#include "fvl/util/random.h"

#include "fvl/util/check.h"

namespace fvl {

uint64_t Rng::Next() {
  // splitmix64 (public domain, Sebastiano Vigna).
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FVL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t value = Next();
    if (value >= threshold) return value % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  FVL_CHECK(lo <= hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint64_t>(hi) - lo + 1));
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace fvl
