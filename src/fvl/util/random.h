// Deterministic, seedable pseudo-random generator (splitmix64-based).
//
// Every generator in the workloads and benchmarks is seeded explicitly so
// that runs, views, and query samples are reproducible across machines; we
// do not use std::mt19937 because its streams differ between standard
// library implementations for some distribution adapters.

#ifndef FVL_UTIL_RANDOM_H_
#define FVL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fvl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  // Uniform 64-bit value.
  uint64_t Next();
  // Uniform in [0, bound); requires bound > 0.
  uint64_t NextBounded(uint64_t bound);
  // Uniform int in [lo, hi] inclusive; requires lo <= hi.
  int NextInt(int lo, int hi);
  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);
  // Uniform double in [0, 1).
  double NextDouble();
  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace fvl

#endif  // FVL_UTIL_RANDOM_H_
