#include "fvl/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace fvl {

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t max_shards = std::max<int64_t>(1, n / kParallelForGrain);
  const int shards =
      static_cast<int>(std::min<int64_t>(std::max(threads, 1), max_shards));
  if (shards == 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  const int64_t per_shard = (n + shards - 1) / shards;
  for (int s = 1; s < shards; ++s) {
    int64_t begin = s * per_shard;
    int64_t end = std::min(n, begin + per_shard);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  body(0, std::min(n, per_shard));
  for (std::thread& worker : workers) worker.join();
}

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  workers_.reserve(count);
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  mu_.Lock();
  while (!queue_.empty() || running_ > 0) idle_cv_.Wait(&mu_);
  mu_.Unlock();
}

void ThreadPool::Stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    // Drain before tearing down: tasks accepted before the stop still run
    // (WorkerLoop keeps popping a non-empty queue even while stopping).
    while (!queue_.empty() || running_ > 0) idle_cv_.Wait(&mu_);
  }
  work_cv_.NotifyAll();
  // Serialized joinable()/join() pass: concurrent Stops (including the
  // destructor racing an explicit Stop) all block here until every worker
  // has exited, so no caller returns while threads still touch members.
  MutexLock join_lock(&join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

int64_t ThreadPool::tasks_completed() const {
  MutexLock lock(&mu_);
  return tasks_completed_;
}

int64_t ThreadPool::exceptions_swallowed() const {
  MutexLock lock(&mu_);
  return exceptions_swallowed_;
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    while (queue_.empty() && !stopping_) work_cv_.Wait(&mu_);
    if (queue_.empty()) break;  // stopping_ and fully drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    mu_.Unlock();
    bool threw = false;
    try {
      task();
    } catch (...) {
      threw = true;  // caller code; contained at the worker boundary
    }
    mu_.Lock();
    --running_;
    ++tasks_completed_;
    if (threw) ++exceptions_swallowed_;
    if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
  }
  mu_.Unlock();
}

}  // namespace fvl
