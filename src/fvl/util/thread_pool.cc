#include "fvl/util/thread_pool.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace fvl {

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t max_shards = std::max<int64_t>(1, n / kParallelForGrain);
  const int shards =
      static_cast<int>(std::min<int64_t>(std::max(threads, 1), max_shards));
  if (shards == 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  const int64_t per_shard = (n + shards - 1) / shards;
  for (int s = 1; s < shards; ++s) {
    int64_t begin = s * per_shard;
    int64_t end = std::min(n, begin + per_shard);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  body(0, std::min(n, per_shard));
  for (std::thread& worker : workers) worker.join();
}

}  // namespace fvl
