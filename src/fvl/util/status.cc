#include "fvl/util/status.h"

namespace fvl {

const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kInvalidSpecification:
      return "invalid-specification";
    case ErrorCode::kImproperGrammar:
      return "improper-grammar";
    case ErrorCode::kNotStrictlyLinearRecursive:
      return "not-strictly-linear-recursive";
    case ErrorCode::kUnsafeSpecification:
      return "unsafe-specification";
    case ErrorCode::kIncompleteAssignment:
      return "incomplete-assignment";
    case ErrorCode::kInvalidView:
      return "invalid-view";
    case ErrorCode::kImproperView:
      return "improper-view";
    case ErrorCode::kUnsafeView:
      return "unsafe-view";
    case ErrorCode::kInvalidGroup:
      return "invalid-group";
    case ErrorCode::kMalformedBlob:
      return "malformed-blob";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kMapFailed:
      return "map-failed";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  // Appends rather than an operator+ chain: GCC 12 flags the rvalue
  // operator+(const char*, string&&) overload with a bogus -Wrestrict.
  std::string out = "[";
  out += fvl::ToString(code_);
  out += "] ";
  out += message_;
  return out;
}

}  // namespace fvl
