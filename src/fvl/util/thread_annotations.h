// Clang thread-safety annotations plus the lockable primitives the rest of
// the library is required to use (docs/CONCURRENCY.md).
//
// Under Clang, the FVL_* macros expand to the static thread-safety
// attributes, and the dedicated CI lane compiles the tree with
// `-Wthread-safety -Werror=thread-safety`, so reading or writing a
// FVL_GUARDED_BY member without holding its mutex is a *compile error*
// there. Under GCC (the tier-1 and TSan lanes) the macros expand to
// nothing and the same discipline is checked dynamically by
// `-fsanitize=thread` (tests/concurrency_stress_test.cc drives it).
//
// The repo-specific rule enforced by tools/fvl_lint.py: no naked
// `std::mutex` / `std::condition_variable` / `std::lock_guard` /
// `std::unique_lock` anywhere in src/fvl/ outside this header. Code takes
// fvl::Mutex (an annotated lockable wrapping std::mutex), fvl::MutexLock
// (a scoped guard), and fvl::CondVar (a condition variable whose Wait
// declares the mutex it requires). The wrapper is what makes the static
// analysis possible at all — std::lock_guard<std::mutex> carries no
// capability information, so an unguarded access next to one is invisible
// to the compiler.

#ifndef FVL_UTIL_THREAD_ANNOTATIONS_H_
#define FVL_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define FVL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FVL_THREAD_ANNOTATION(x)  // GCC: no static analysis; TSan covers it
#endif

// A type that is a lock (a "capability" in Clang's model).
#define FVL_CAPABILITY(name) FVL_THREAD_ANNOTATION(capability(name))
#define FVL_LOCKABLE FVL_CAPABILITY("mutex")
// A RAII type that acquires in its constructor and releases in its
// destructor.
#define FVL_SCOPED_CAPABILITY FVL_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads and writes require the named mutex. FVL_PT_GUARDED_BY
// guards what the member points to, not the pointer itself.
#define FVL_GUARDED_BY(mu) FVL_THREAD_ANNOTATION(guarded_by(mu))
#define FVL_PT_GUARDED_BY(mu) FVL_THREAD_ANNOTATION(pt_guarded_by(mu))

// Functions: the caller must hold / must not hold the named mutexes.
#define FVL_REQUIRES(...) \
  FVL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FVL_EXCLUDES(...) FVL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that change the lock state.
#define FVL_ACQUIRE(...) \
  FVL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FVL_RELEASE(...) \
  FVL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FVL_TRY_ACQUIRE(...) \
  FVL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// A function returning a reference to the capability guarding its result.
#define FVL_RETURN_CAPABILITY(mu) FVL_THREAD_ANNOTATION(lock_returned(mu))

// Escape hatch for code the analysis cannot follow (document why at every
// use; tools/fvl_lint.py's review surface is the grep for this token).
#define FVL_NO_THREAD_SAFETY_ANALYSIS \
  FVL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fvl {

// std::mutex with a capability attribute. Lock()/Unlock() are for the rare
// hand-over-hand or wait-loop shapes (net/server.cc's batcher); everything
// else uses MutexLock.
class FVL_LOCKABLE Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FVL_ACQUIRE() { raw_.lock(); }
  void Unlock() FVL_RELEASE() { raw_.unlock(); }
  bool TryLock() FVL_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

// Scoped lock; the std::lock_guard of the annotated world.
class FVL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FVL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() FVL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable over fvl::Mutex. Wait() declares (statically) that the
// mutex must already be held, which is exactly the std::condition_variable
// contract the compiler could never check. Spurious wakeups are the
// caller's business, as usual: wait in a loop or pass a predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) FVL_REQUIRES(mu) {
    // condition_variable_any unlocks/relocks through BasicLockable, which
    // std::mutex satisfies; the capability is held again when Wait returns,
    // matching the REQUIRES annotation.
    cv_.wait(mu->raw_);
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate stop_waiting) FVL_REQUIRES(mu) {
    cv_.wait(mu->raw_, std::move(stop_waiting));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fvl

#endif  // FVL_UTIL_THREAD_ANNOTATIONS_H_
