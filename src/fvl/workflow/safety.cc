#include "fvl/workflow/safety.h"

#include <deque>

#include "fvl/util/check.h"
#include "fvl/workflow/port_graph.h"

namespace fvl {

Result<DependencyAssignment> CheckSafety(const Grammar& grammar,
                                         const DependencyAssignment& base_deps,
                                         const std::vector<bool>* composite) {
  auto is_composite = [&](ModuleId m) {
    return composite != nullptr ? (*composite)[m] : grammar.is_composite(m);
  };

  // λ* starts from the base assignment on non-composite modules.
  DependencyAssignment full(grammar.num_modules());
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (!is_composite(m) && base_deps.IsDefined(m)) {
      full.Set(m, base_deps.Get(m));
    }
  }

  // Active productions and, per production, the count of distinct member
  // modules whose λ* is still undefined.
  std::vector<ProductionId> active;
  for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
    if (is_composite(grammar.production(k).lhs)) active.push_back(k);
  }
  std::vector<int> undefined_members(grammar.num_productions(), 0);
  // waiters[m] = active productions containing module m as a member.
  std::vector<std::vector<ProductionId>> waiters(grammar.num_modules());
  std::deque<ProductionId> ready;

  for (ProductionId k : active) {
    const Production& p = grammar.production(k);
    std::vector<bool> counted(grammar.num_modules(), false);
    for (ModuleId member : p.rhs.members) {
      if (counted[member]) continue;
      counted[member] = true;
      if (!is_composite(member) && !full.IsDefined(member)) {
        return Status::Error(
            ErrorCode::kIncompleteAssignment,
            "module '" + grammar.module(member).name +
                "' is used by production " + std::to_string(k + 1) +
                " but has no dependency assignment");
      }
      if (!full.IsDefined(member)) {
        ++undefined_members[k];
        waiters[member].push_back(k);
      }
    }
    if (undefined_members[k] == 0) ready.push_back(k);
  }

  int processed = 0;
  while (!ready.empty()) {
    ProductionId k = ready.front();
    ready.pop_front();
    ++processed;
    const Production& p = grammar.production(k);
    WorkflowPortGraph port_graph(grammar, p.rhs, full);
    BoolMatrix reach = port_graph.InitialToFinal();
    if (full.IsDefined(p.lhs)) {
      if (full.Get(p.lhs) != reach) {
        return Status::Error(
            ErrorCode::kUnsafeSpecification,
            "production " + std::to_string(k + 1) +
                " is inconsistent with the full assignment of '" +
                grammar.module(p.lhs).name + "':\nexpected\n" +
                full.Get(p.lhs).ToString() + "\ngot\n" + reach.ToString());
      }
    } else {
      full.Set(p.lhs, reach);
      for (ProductionId waiter : waiters[p.lhs]) {
        if (--undefined_members[waiter] == 0) ready.push_back(waiter);
      }
    }
  }

  if (processed != static_cast<int>(active.size())) {
    return Status::Error(
        ErrorCode::kImproperGrammar,
        "some productions never became verifiable (grammar or view is not "
        "proper: unproductive composite modules)");
  }

  return full;
}

}  // namespace fvl
