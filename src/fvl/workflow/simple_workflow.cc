#include "fvl/workflow/simple_workflow.h"

#include <string>

namespace fvl {

namespace {

std::string PortName(const PortRef& p, bool is_input) {
  return "member " + std::to_string(p.member) + (is_input ? " input " : " output ") +
         std::to_string(p.port);
}

}  // namespace

std::optional<std::string> SimpleWorkflow::Validate(
    const std::vector<Module>& modules) const {
  if (members.empty()) return "simple workflow has no members";
  for (ModuleId type : members) {
    if (type < 0 || type >= static_cast<int>(modules.size())) {
      return "member references unknown module id " + std::to_string(type);
    }
  }
  auto valid_input = [&](const PortRef& p) {
    return p.member >= 0 && p.member < num_members() && p.port >= 0 &&
           p.port < modules[members[p.member]].num_inputs;
  };
  auto valid_output = [&](const PortRef& p) {
    return p.member >= 0 && p.member < num_members() && p.port >= 0 &&
           p.port < modules[members[p.member]].num_outputs;
  };

  // Count how many times each port is used.
  std::vector<std::vector<int>> in_uses(num_members());
  std::vector<std::vector<int>> out_uses(num_members());
  for (int m = 0; m < num_members(); ++m) {
    in_uses[m].assign(modules[members[m]].num_inputs, 0);
    out_uses[m].assign(modules[members[m]].num_outputs, 0);
  }

  for (const DataEdge& e : edges) {
    if (!valid_output(e.src)) return "edge source is not a valid output port";
    if (!valid_input(e.dst)) return "edge target is not a valid input port";
    if (e.src.member >= e.dst.member) {
      return "edge from member " + std::to_string(e.src.member) + " to member " +
             std::to_string(e.dst.member) +
             " violates the fixed topological member order";
    }
    ++out_uses[e.src.member][e.src.port];
    ++in_uses[e.dst.member][e.dst.port];
  }
  for (const PortRef& p : initial_inputs) {
    if (!valid_input(p)) return "initial input is not a valid input port";
    ++in_uses[p.member][p.port];
  }
  for (const PortRef& p : final_outputs) {
    if (!valid_output(p)) return "final output is not a valid output port";
    ++out_uses[p.member][p.port];
  }

  for (int m = 0; m < num_members(); ++m) {
    for (int p = 0; p < static_cast<int>(in_uses[m].size()); ++p) {
      if (in_uses[m][p] != 1) {
        return PortName({m, p}, true) +
               (in_uses[m][p] == 0 ? " is never fed" : " is fed more than once");
      }
    }
    for (int p = 0; p < static_cast<int>(out_uses[m].size()); ++p) {
      if (out_uses[m][p] != 1) {
        return PortName({m, p}, false) + (out_uses[m][p] == 0
                                              ? " is never consumed"
                                              : " is consumed more than once");
      }
    }
  }
  return std::nullopt;
}

int SimpleWorkflow::TotalPorts(const std::vector<Module>& modules) const {
  int total = 0;
  for (ModuleId type : members) {
    total += modules[type].num_inputs + modules[type].num_outputs;
  }
  return total;
}

}  // namespace fvl
