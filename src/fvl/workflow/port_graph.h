// Port-level reachability inside one simple workflow W^λ*.
//
// Nodes are the input/output ports of W's members; edges are the members'
// internal dependency edges (per the supplied assignment, which must cover
// every member's module) plus W's data edges. Reachability is reflexive.
//
// This is the workhorse behind the safety check (Thm. 2: consistency of
// M ->f W requires reach(f(x), f(y)) == λ*(M)[x, y]) and behind the view
// label functions I, O, Z (§4.3).

#ifndef FVL_WORKFLOW_PORT_GRAPH_H_
#define FVL_WORKFLOW_PORT_GRAPH_H_

#include <vector>

#include "fvl/graph/digraph.h"
#include "fvl/util/boolean_matrix.h"
#include "fvl/workflow/dependency.h"
#include "fvl/workflow/grammar.h"

namespace fvl {

// Structural modifications applied while building a port graph; used by
// user-defined views (§5) to replace a group of members with the perceived
// dependencies of the grouping module F.
struct PortGraphOverlay {
  // Per member: drop its internal dependency edges (its deps need not be
  // defined in the assignment then).
  std::vector<bool> suppress_member;
  // Indices into w.edges to drop (group-internal data edges).
  std::vector<int> suppressed_edges;
  // Extra dependency edges from an input port to an output port, possibly
  // across members (λ'(F) edges between group boundary ports).
  struct CrossDep {
    PortRef from_input;
    PortRef to_output;
  };
  std::vector<CrossDep> extra_deps;
};

class WorkflowPortGraph {
 public:
  // `deps` must define a matrix for the module of every member of `w`
  // (except members suppressed by the overlay).
  WorkflowPortGraph(const Grammar& grammar, const SimpleWorkflow& w,
                    const DependencyAssignment& deps,
                    const PortGraphOverlay* overlay = nullptr);

  // Reachability between arbitrary ports, reflexive.
  bool InputReachesInput(PortRef from, PortRef to) const;
  bool InputReachesOutput(PortRef from, PortRef to) const;
  bool OutputReachesInput(PortRef from, PortRef to) const;
  bool OutputReachesOutput(PortRef from, PortRef to) const;

  // λ*(M) of the owning production: [x][y] = initial input x reaches final
  // output y.
  BoolMatrix InitialToFinal() const;
  // I(k, i): [x][y] = initial input x reaches input y of member i.
  BoolMatrix InitialToMemberInputs(int member) const;
  // O(k, i), reversed per §4.3: [x][y] = output y of member i reaches final
  // output x.
  BoolMatrix MemberOutputsToFinalReversed(int member) const;
  // Z(k, i, j): [x][y] = output x of member i reaches input y of member j.
  BoolMatrix MemberOutputsToMemberInputs(int i, int j) const;

 private:
  int InputNode(PortRef p) const { return input_base_[p.member] + p.port; }
  int OutputNode(PortRef p) const { return output_base_[p.member] + p.port; }
  bool Reaches(int from, int to) const;

  const Grammar* grammar_;
  const SimpleWorkflow* workflow_;
  std::vector<int> input_base_;
  std::vector<int> output_base_;
  Digraph graph_;
  // closure_[node] = bitset (as BoolMatrix row) of reachable nodes.
  BoolMatrix closure_;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_PORT_GRAPH_H_
