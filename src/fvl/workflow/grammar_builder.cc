#include "fvl/workflow/grammar_builder.h"

#include <cstdio>

#include "fvl/util/check.h"

namespace fvl {

GrammarBuilder::ProductionBuilder::ProductionBuilder(GrammarBuilder* parent,
                                                     ModuleId lhs)
    : parent_(parent) {
  FVL_CHECK(lhs >= 0 && lhs < parent->num_modules());
  FVL_CHECK(parent->composite_[lhs]);
  production_.lhs = lhs;
  production_.rhs.initial_inputs.assign(parent->modules_[lhs].num_inputs,
                                        PortRef{});
  production_.rhs.final_outputs.assign(parent->modules_[lhs].num_outputs,
                                       PortRef{});
}

int GrammarBuilder::ProductionBuilder::AddMember(ModuleId type) {
  FVL_CHECK(!built_);
  FVL_CHECK(type >= 0 && type < parent_->num_modules());
  production_.rhs.members.push_back(type);
  return production_.rhs.num_members() - 1;
}

GrammarBuilder::ProductionBuilder& GrammarBuilder::ProductionBuilder::Edge(
    int src_member, int src_port, int dst_member, int dst_port) {
  FVL_CHECK(!built_);
  production_.rhs.edges.push_back(
      {{src_member, src_port}, {dst_member, dst_port}});
  return *this;
}

GrammarBuilder::ProductionBuilder& GrammarBuilder::ProductionBuilder::MapInput(
    int lhs_input, int member, int port) {
  FVL_CHECK(!built_);
  FVL_CHECK(lhs_input >= 0 &&
            lhs_input < static_cast<int>(production_.rhs.initial_inputs.size()));
  production_.rhs.initial_inputs[lhs_input] = {member, port};
  return *this;
}

GrammarBuilder::ProductionBuilder&
GrammarBuilder::ProductionBuilder::MapOutput(int lhs_output, int member,
                                             int port) {
  FVL_CHECK(!built_);
  FVL_CHECK(lhs_output >= 0 &&
            lhs_output < static_cast<int>(production_.rhs.final_outputs.size()));
  production_.rhs.final_outputs[lhs_output] = {member, port};
  return *this;
}

ProductionId GrammarBuilder::ProductionBuilder::Build() {
  FVL_CHECK(!built_);
  built_ = true;
  parent_->productions_.push_back(std::move(production_));
  return static_cast<ProductionId>(parent_->productions_.size()) - 1;
}

ModuleId GrammarBuilder::AddModule(std::string name, int num_inputs,
                                   int num_outputs, bool composite) {
  FVL_CHECK(num_inputs >= 0 && num_outputs >= 0);
  modules_.push_back({std::move(name), num_inputs, num_outputs});
  composite_.push_back(composite);
  return num_modules() - 1;
}

ModuleId GrammarBuilder::AddAtomic(std::string name, int num_inputs,
                                   int num_outputs) {
  return AddModule(std::move(name), num_inputs, num_outputs, false);
}

ModuleId GrammarBuilder::AddComposite(std::string name, int num_inputs,
                                      int num_outputs) {
  return AddModule(std::move(name), num_inputs, num_outputs, true);
}

void GrammarBuilder::SetStart(ModuleId m) {
  FVL_CHECK(m >= 0 && m < num_modules());
  start_ = m;
}

GrammarBuilder::ProductionBuilder GrammarBuilder::NewProduction(ModuleId lhs) {
  return ProductionBuilder(this, lhs);
}

void GrammarBuilder::SetDeps(ModuleId m, BoolMatrix deps) {
  FVL_CHECK(m >= 0 && m < num_modules());
  deps_.Set(m, std::move(deps));
}

void GrammarBuilder::SetCompleteDeps(ModuleId m) {
  FVL_CHECK(m >= 0 && m < num_modules());
  SetDeps(m, BoolMatrix::Full(modules_[m].num_inputs, modules_[m].num_outputs));
}

void GrammarBuilder::SetIdentityDeps(ModuleId m) {
  FVL_CHECK(m >= 0 && m < num_modules());
  FVL_CHECK(modules_[m].num_inputs == modules_[m].num_outputs);
  SetDeps(m, BoolMatrix::Identity(modules_[m].num_inputs));
}

Grammar GrammarBuilder::BuildGrammar() const {
  Grammar grammar(modules_, composite_, start_, productions_);
  if (auto error = grammar.Validate()) {
    std::fprintf(stderr, "GrammarBuilder: %s\n", error->c_str());
    FVL_CHECK(false && "invalid grammar");
  }
  return grammar;
}

Specification GrammarBuilder::BuildSpecification() const {
  Specification spec{BuildGrammar(), deps_};
  if (auto error = spec.Validate()) {
    std::fprintf(stderr, "GrammarBuilder: %s\n", error->c_str());
    FVL_CHECK(false && "invalid specification");
  }
  return spec;
}

}  // namespace fvl
