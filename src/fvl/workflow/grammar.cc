#include "fvl/workflow/grammar.h"

#include "fvl/util/check.h"

namespace fvl {

Grammar::Grammar(std::vector<Module> modules, std::vector<bool> composite,
                 ModuleId start, std::vector<Production> productions)
    : modules_(std::move(modules)),
      composite_(std::move(composite)),
      start_(start),
      productions_(std::move(productions)),
      productions_of_(modules_.size()) {
  FVL_CHECK(composite_.size() == modules_.size());
  for (ProductionId k = 0; k < num_productions(); ++k) {
    ModuleId lhs = productions_[k].lhs;
    FVL_CHECK(lhs >= 0 && lhs < num_modules());
    productions_of_[lhs].push_back(k);
  }
}

ModuleId Grammar::FindModule(const std::string& name) const {
  for (ModuleId m = 0; m < num_modules(); ++m) {
    if (modules_[m].name == name) return m;
  }
  return kInvalidModule;
}

std::vector<ModuleId> Grammar::AtomicModules() const {
  std::vector<ModuleId> atoms;
  for (ModuleId m = 0; m < num_modules(); ++m) {
    if (!composite_[m]) atoms.push_back(m);
  }
  return atoms;
}

std::vector<ModuleId> Grammar::CompositeModules() const {
  std::vector<ModuleId> result;
  for (ModuleId m = 0; m < num_modules(); ++m) {
    if (composite_[m]) result.push_back(m);
  }
  return result;
}

std::optional<std::string> Grammar::Validate() const {
  if (start_ < 0 || start_ >= num_modules()) return "invalid start module";
  if (!composite_[start_]) return "start module must be composite";
  for (ProductionId k = 0; k < num_productions(); ++k) {
    const Production& p = productions_[k];
    std::string where = "production " + std::to_string(k + 1) + " (" +
                        modules_[p.lhs].name + "): ";
    if (!composite_[p.lhs]) return where + "lhs module is atomic";
    if (auto error = p.rhs.Validate(modules_)) return where + *error;
    if (static_cast<int>(p.rhs.initial_inputs.size()) !=
        modules_[p.lhs].num_inputs) {
      return where + "initial inputs do not biject with lhs input ports";
    }
    if (static_cast<int>(p.rhs.final_outputs.size()) !=
        modules_[p.lhs].num_outputs) {
      return where + "final outputs do not biject with lhs output ports";
    }
  }
  return std::nullopt;
}

int64_t Grammar::Size() const {
  int64_t size = 0;
  for (const Production& p : productions_) {
    size += modules_[p.lhs].num_inputs + modules_[p.lhs].num_outputs;
    size += p.rhs.TotalPorts(modules_);
  }
  return size;
}

std::optional<std::string> Specification::Validate() const {
  if (auto error = grammar.Validate()) return error;
  return deps.ValidateCoverage(grammar.modules(), grammar.AtomicModules());
}

}  // namespace fvl
