// Context-free workflow grammars (Def. 4): G = (Σ, Δ, S, P) with modules Σ,
// composite modules Δ ⊆ Σ, start module S and workflow productions P.
//
// A workflow specification (Def. 7) is a Grammar plus a DependencyAssignment
// for its atomic modules; the pair is carried around as `Specification`.

#ifndef FVL_WORKFLOW_GRAMMAR_H_
#define FVL_WORKFLOW_GRAMMAR_H_

#include <optional>
#include <string>
#include <vector>

#include "fvl/workflow/dependency.h"
#include "fvl/workflow/module.h"
#include "fvl/workflow/simple_workflow.h"

namespace fvl {

// A workflow production M ->f W (Def. 3). The bijection f is encoded by the
// order of W.initial_inputs / W.final_outputs (index x maps the x-th
// input/output port of M).
struct Production {
  ModuleId lhs = kInvalidModule;
  SimpleWorkflow rhs;
};

class Grammar {
 public:
  Grammar() = default;
  Grammar(std::vector<Module> modules, std::vector<bool> composite,
          ModuleId start, std::vector<Production> productions);

  int num_modules() const { return static_cast<int>(modules_.size()); }
  const Module& module(ModuleId m) const { return modules_[m]; }
  const std::vector<Module>& modules() const { return modules_; }
  bool is_composite(ModuleId m) const { return composite_[m]; }
  ModuleId start() const { return start_; }

  int num_productions() const { return static_cast<int>(productions_.size()); }
  const Production& production(ProductionId k) const { return productions_[k]; }
  // Productions whose lhs is `m`, in production-table order.
  const std::vector<ProductionId>& ProductionsOf(ModuleId m) const {
    return productions_of_[m];
  }

  // Module lookup by name; kInvalidModule if absent.
  ModuleId FindModule(const std::string& name) const;

  // All atomic (non-composite) module ids.
  std::vector<ModuleId> AtomicModules() const;
  // All composite module ids (Δ).
  std::vector<ModuleId> CompositeModules() const;

  // Structural validation: start exists and is composite, production lhs are
  // composite, rhs workflows validate, port bijections have matching arity,
  // atomic modules have no productions.
  std::optional<std::string> Validate() const;

  // Size |G| = sum of production sizes (total ports of lhs + rhs), used in
  // complexity accounting.
  int64_t Size() const;

 private:
  std::vector<Module> modules_;
  std::vector<bool> composite_;
  ModuleId start_ = kInvalidModule;
  std::vector<Production> productions_;
  std::vector<std::vector<ProductionId>> productions_of_;
};

// A workflow specification G^λ (Def. 7).
struct Specification {
  Grammar grammar;
  DependencyAssignment deps;  // λ, defined for atomic modules

  // Validates the grammar and λ-coverage of all atomic modules.
  std::optional<std::string> Validate() const;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_GRAMMAR_H_
