// Simple workflows (Def. 2): a multiset of module instances ("members")
// connected by data edges from output ports to input ports.
//
// Representation invariants (checked by Validate):
//  * members are listed in a fixed topological order (the paper fixes one
//    arbitrarily in §4.1; here it is the listing order, and every data edge
//    must go from an earlier member to a later one, which also enforces
//    acyclicity);
//  * data edges are pairwise non-adjacent: every (member, input port) is fed
//    exactly once — by a data edge or by being an initial input — and every
//    (member, output port) is consumed exactly once — by a data edge or by
//    being a final output;
//  * initial_inputs / final_outputs are ordered by the port bijection f of
//    the production that owns this workflow: initial_inputs[x] is the port
//    that the x-th input of the produced module maps to.

#ifndef FVL_WORKFLOW_SIMPLE_WORKFLOW_H_
#define FVL_WORKFLOW_SIMPLE_WORKFLOW_H_

#include <optional>
#include <string>
#include <vector>

#include "fvl/workflow/module.h"

namespace fvl {

// A port of a member instance within a simple workflow. `member` is an index
// into SimpleWorkflow::members (not a ModuleId: the same module may occur
// several times).
struct PortRef {
  int member = -1;
  int port = -1;

  bool operator==(const PortRef&) const = default;
};

// A data edge carrying one data item from an output port to an input port.
struct DataEdge {
  PortRef src;  // (member, output port)
  PortRef dst;  // (member, input port)

  bool operator==(const DataEdge&) const = default;
};

struct SimpleWorkflow {
  std::vector<ModuleId> members;        // fixed topological order
  std::vector<DataEdge> edges;
  std::vector<PortRef> initial_inputs;  // [x] = image of lhs input x under f
  std::vector<PortRef> final_outputs;   // [y] = image of lhs output y under f

  int num_members() const { return static_cast<int>(members.size()); }

  // Structural validation against a module table (see invariants above).
  // Does not know about the production's lhs; the grammar validates that
  // initial/final counts match the lhs ports.
  std::optional<std::string> Validate(const std::vector<Module>& modules) const;

  // Total number of ports over all members (the paper's |W| contribution).
  int TotalPorts(const std::vector<Module>& modules) const;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_SIMPLE_WORKFLOW_H_
