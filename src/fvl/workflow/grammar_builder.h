// Fluent construction of grammars and specifications.
//
// Usage:
//   GrammarBuilder b;
//   ModuleId s = b.AddComposite("S", 2, 3);
//   ModuleId a = b.AddAtomic("a", 1, 2);
//   b.SetStart(s);
//   auto p = b.NewProduction(s);
//   int ma = p.AddMember(a); ...
//   p.Edge(ma, 0, mb, 1).MapInput(0, ma, 0).MapOutput(0, mc, 1);
//   p.Build();
//   b.SetDeps(a, matrix);
//   Specification spec = b.BuildSpecification();   // FVL_CHECKs validity
//
// Builder misuse (mismatched arities, invalid wiring) is a programmer error
// and aborts via FVL_CHECK with the underlying validation message.

#ifndef FVL_WORKFLOW_GRAMMAR_BUILDER_H_
#define FVL_WORKFLOW_GRAMMAR_BUILDER_H_

#include <string>
#include <vector>

#include "fvl/workflow/grammar.h"

namespace fvl {

class GrammarBuilder {
 public:
  class ProductionBuilder {
   public:
    // Appends a member instance of the given module; returns member index.
    int AddMember(ModuleId type);
    ProductionBuilder& Edge(int src_member, int src_port, int dst_member,
                            int dst_port);
    // Binds the lhs_input-th input port of the produced module to
    // (member, port) under the bijection f.
    ProductionBuilder& MapInput(int lhs_input, int member, int port);
    ProductionBuilder& MapOutput(int lhs_output, int member, int port);
    // Registers the production; returns its id.
    ProductionId Build();

   private:
    friend class GrammarBuilder;
    ProductionBuilder(GrammarBuilder* parent, ModuleId lhs);

    GrammarBuilder* parent_;
    Production production_;
    bool built_ = false;
  };

  ModuleId AddAtomic(std::string name, int num_inputs, int num_outputs);
  ModuleId AddComposite(std::string name, int num_inputs, int num_outputs);
  void SetStart(ModuleId m);

  ProductionBuilder NewProduction(ModuleId lhs);

  // Dependency assignment for atomic modules (λ).
  void SetDeps(ModuleId m, BoolMatrix deps);
  // Convenience: complete (black-box) dependencies.
  void SetCompleteDeps(ModuleId m);
  // Convenience: identity dependencies (requires square port counts).
  void SetIdentityDeps(ModuleId m);

  int num_modules() const { return static_cast<int>(modules_.size()); }
  const Module& module(ModuleId m) const { return modules_[m]; }

  // Builds and validates; aborts on invalid input.
  Grammar BuildGrammar() const;
  Specification BuildSpecification() const;

 private:
  ModuleId AddModule(std::string name, int num_inputs, int num_outputs,
                     bool composite);

  std::vector<Module> modules_;
  std::vector<bool> composite_;
  ModuleId start_ = kInvalidModule;
  std::vector<Production> productions_;
  DependencyAssignment deps_;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_GRAMMAR_BUILDER_H_
