// Properness (Def. 5): a grammar is proper iff it has no underivable
// composite modules, no unproductive composite modules, and no unit-cycles
// (M =>* M by at least one step, which can only arise through chains of
// unit productions M -> M').
//
// MakeProper transforms any grammar into a proper one with the same
// language: it removes unproductive modules (and productions mentioning
// them), removes underivable modules, and eliminates unit-production cycles.

#ifndef FVL_WORKFLOW_PROPERNESS_H_
#define FVL_WORKFLOW_PROPERNESS_H_

#include <string>
#include <vector>

#include "fvl/util/status.h"
#include "fvl/workflow/grammar.h"

namespace fvl {

struct PropernessReport {
  std::vector<bool> derivable;   // per module: appears in some S =>* W
  std::vector<bool> productive;  // per module: derives an all-atomic workflow
  bool has_unit_cycle = false;
  std::vector<ModuleId> unit_cycle_witness;  // modules on one unit cycle

  bool IsProper(const Grammar& g) const;
  std::string Describe(const Grammar& g) const;
};

PropernessReport AnalyzeProperness(const Grammar& g);

// Language-preserving properness transformation. Fails with
// kImproperGrammar if the language is empty (the start module is
// unproductive) or if a unit cycle with non-identity port bijections is
// encountered (unsupported; see docs/DESIGN.md §7).
[[nodiscard]] Result<Grammar> MakeProper(const Grammar& g);

}  // namespace fvl

#endif  // FVL_WORKFLOW_PROPERNESS_H_
