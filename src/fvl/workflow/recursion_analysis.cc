#include "fvl/workflow/recursion_analysis.h"

#include <deque>
#include <vector>

namespace fvl {

bool IsLinearRecursive(const ProductionGraph& pg) {
  const Grammar& g = pg.grammar();
  // Lemma 3: for every production M -> W, at most one member of W (counting
  // duplicates) reaches M in P(G).
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    const Production& p = g.production(k);
    int reaching = 0;
    for (ModuleId member : p.rhs.members) {
      if (pg.Reaches(member, p.lhs)) ++reaching;
    }
    if (reaching > 1) return false;
  }
  return true;
}

bool IsStrictlyLinearRecursive(const ProductionGraph& pg) {
  return pg.strictly_linear();
}

namespace {

// BFS for a cycle through `v`, ignoring edges whose id is in `banned`
// (at most one entry). Returns the edge ids of one such cycle, or empty.
std::vector<int> FindCycleThrough(const Digraph& graph, int v, int banned) {
  // Find a path from any successor of v back to v.
  std::vector<int> parent_edge(graph.num_nodes(), -1);
  std::vector<bool> visited(graph.num_nodes(), false);
  std::deque<int> queue;

  for (int edge_id : graph.OutEdges(v)) {
    if (edge_id == banned) continue;
    int to = graph.edge(edge_id).to;
    if (to == v) return {edge_id};  // self-loop
    if (!visited[to]) {
      visited[to] = true;
      parent_edge[to] = edge_id;
      queue.push_back(to);
    }
  }
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (int edge_id : graph.OutEdges(node)) {
      if (edge_id == banned) continue;
      int to = graph.edge(edge_id).to;
      if (to == v) {
        // Reconstruct: v -> ... -> node -> v.
        std::vector<int> cycle = {edge_id};
        for (int walk = node; walk != v;) {
          int pe = parent_edge[walk];
          cycle.push_back(pe);
          walk = graph.edge(pe).from;
        }
        return cycle;
      }
      if (!visited[to]) {
        visited[to] = true;
        parent_edge[to] = edge_id;
        queue.push_back(to);
      }
    }
  }
  return {};
}

}  // namespace

bool IsStrictlyLinearRecursivePaperAlgorithm(const ProductionGraph& pg) {
  const Digraph& graph = pg.graph();
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::vector<int> first_cycle = FindCycleThrough(graph, v, /*banned=*/-1);
    if (first_cycle.empty()) continue;
    // Any second cycle through v must avoid at least one edge of the first;
    // search once per removed edge.
    for (int removed : first_cycle) {
      if (!FindCycleThrough(graph, v, removed).empty()) return false;
    }
  }
  return true;
}

}  // namespace fvl
