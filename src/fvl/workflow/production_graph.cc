#include "fvl/workflow/production_graph.h"

#include <algorithm>

#include "fvl/graph/reachability.h"
#include "fvl/graph/scc.h"
#include "fvl/util/check.h"

namespace fvl {

ProductionGraph::ProductionGraph(const Grammar* grammar)
    : grammar_(grammar), graph_(grammar->num_modules()) {
  for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
    const Production& p = grammar_->production(k);
    for (int pos = 0; pos < p.rhs.num_members(); ++pos) {
      graph_.AddEdge(p.lhs, p.rhs.members[pos]);
      edge_ids_.push_back({k, pos});
    }
  }
  closure_ = TransitiveClosure(graph_);

  // Cycle extraction from SCCs. A non-trivial SCC (>= 2 nodes, or a single
  // node with a self-loop) hosts vertex-disjoint cycles iff it is itself a
  // single simple cycle: every member has exactly one outgoing and one
  // incoming edge *within* the SCC, counting parallel edges individually.
  const int n = grammar_->num_modules();
  cycle_of_.assign(n, -1);
  cycle_index_of_.assign(n, -1);

  SccResult scc = StronglyConnectedComponents(graph_);
  std::vector<std::vector<int>> members_by_component = scc.Members();
  // Deterministic cycle numbering: order components by smallest member id.
  std::sort(members_by_component.begin(), members_by_component.end());

  for (const std::vector<int>& members : members_by_component) {
    // Internal edges per member.
    bool non_trivial = members.size() > 1;
    std::vector<std::vector<int>> internal_out(members.size());
    for (size_t idx = 0; idx < members.size(); ++idx) {
      int node = members[idx];
      for (int edge_id : graph_.OutEdges(node)) {
        if (scc.component[graph_.edge(edge_id).to] == scc.component[node]) {
          internal_out[idx].push_back(edge_id);
          non_trivial = true;
        }
      }
    }
    if (!non_trivial) continue;  // singleton without self-loop

    for (const auto& out : internal_out) {
      if (out.size() != 1) {
        // Two cycles share a vertex (or a vertex cannot close the cycle).
        strictly_linear_ = false;
      }
    }
    if (!strictly_linear_) continue;

    // Walk the unique cycle starting at the smallest module id.
    int start = *std::min_element(members.begin(), members.end());
    Cycle cycle;
    int node = start;
    do {
      size_t idx = 0;
      while (members[idx] != node) ++idx;
      FVL_CHECK(internal_out[idx].size() == 1);
      int edge_id = internal_out[idx][0];
      cycle.members.push_back(node);
      cycle.edges.push_back(edge_ids_[edge_id]);
      node = graph_.edge(edge_id).to;
    } while (node != start);
    FVL_CHECK(cycle.members.size() == members.size());

    int cycle_id = static_cast<int>(cycles_.size());
    for (int a = 0; a < cycle.length(); ++a) {
      cycle_of_[cycle.members[a]] = cycle_id;
      cycle_index_of_[cycle.members[a]] = a;
    }
    cycles_.push_back(std::move(cycle));
  }
  if (!strictly_linear_) {
    cycles_.clear();
    // cycle_of_ stays meaningful as "lies on some cycle" only for entries we
    // set; recompute it generically so IsRecursive works for any grammar.
    cycle_of_.assign(n, -1);
    cycle_index_of_.assign(n, -1);
    SccResult again = StronglyConnectedComponents(graph_);
    std::vector<int> component_size(again.num_components, 0);
    for (int node = 0; node < n; ++node) ++component_size[again.component[node]];
    for (int node = 0; node < n; ++node) {
      bool self_loop = false;
      for (int edge_id : graph_.OutEdges(node)) {
        if (graph_.edge(edge_id).to == node) self_loop = true;
      }
      if (component_size[again.component[node]] > 1 || self_loop) {
        cycle_of_[node] = -2;  // recursive, but no cycle id available
      }
    }
  }
}

ModuleId ProductionGraph::EdgeTarget(PgEdge e) const {
  const Production& p = grammar_->production(e.production);
  FVL_CHECK(e.position >= 0 && e.position < p.rhs.num_members());
  return p.rhs.members[e.position];
}

ModuleId ProductionGraph::EdgeSource(PgEdge e) const {
  return grammar_->production(e.production).lhs;
}

bool ProductionGraph::IsRecursiveGrammar() const {
  for (int value : cycle_of_) {
    if (value != -1) return true;
  }
  return false;
}

PgEdge ProductionGraph::CycleEdgeAt(int s, int index) const {
  FVL_CHECK(strictly_linear_);
  FVL_CHECK(s >= 0 && s < num_cycles());
  const Cycle& cycle = cycles_[s];
  int wrapped = index % cycle.length();
  if (wrapped < 0) wrapped += cycle.length();
  return cycle.edges[wrapped];
}

}  // namespace fvl
