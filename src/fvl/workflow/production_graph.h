// Production graphs (Def. 15) and the §4.1 preprocessing.
//
// P(G) is a directed multigraph over modules with one edge per production
// member: production k = M -> W with its i-th member M' contributes an edge
// M -> M' identified by the pair (k, i) (0-based here; the paper is
// 1-based).
//
// For strictly linear-recursive grammars (Def. 16) the cycles of P(G) are
// vertex-disjoint; the preprocessing fixes an order among them and a first
// edge within each, producing the global cycle index C(s) used by both data
// and view labels. The first edge of a cycle is the edge sourced at the
// cycle member with the smallest module id.

#ifndef FVL_WORKFLOW_PRODUCTION_GRAPH_H_
#define FVL_WORKFLOW_PRODUCTION_GRAPH_H_

#include <vector>

#include "fvl/graph/digraph.h"
#include "fvl/util/boolean_matrix.h"
#include "fvl/workflow/grammar.h"

namespace fvl {

// The paper's edge id (k, i): member `pos` of production `k`.
struct PgEdge {
  ProductionId production = -1;
  int position = -1;

  bool operator==(const PgEdge&) const = default;
};

class ProductionGraph {
 public:
  explicit ProductionGraph(const Grammar* grammar);

  const Grammar& grammar() const { return *grammar_; }
  const Digraph& graph() const { return graph_; }

  // The module that edge (k, i) points to (the i-th member of production k).
  ModuleId EdgeTarget(PgEdge e) const;
  // The module that edge (k, i) leaves (the lhs of production k).
  ModuleId EdgeSource(PgEdge e) const;

  // Reflexive reachability between modules in P(G).
  bool Reaches(ModuleId from, ModuleId to) const {
    return closure_.Get(from, to);
  }

  // A module is recursive iff it lies on a cycle of P(G). (For non-strict
  // grammars cycle ids are unavailable and CycleOf reports -2; recursiveness
  // itself is still meaningful.)
  bool IsRecursive(ModuleId m) const { return cycle_of_[m] != -1; }
  // True iff some module is recursive.
  bool IsRecursiveGrammar() const;

  // --- Cycle structure (valid only when strictly_linear()). ---

  // True iff all cycles of P(G) are vertex-disjoint (Def. 16), computed from
  // the SCC structure: every non-trivial SCC must be a single simple cycle.
  bool strictly_linear() const { return strictly_linear_; }

  struct Cycle {
    // edges[a] goes members[a] -> members[(a + 1) % length]; edges[a] is an
    // edge of a production of members[a].
    std::vector<PgEdge> edges;
    std::vector<ModuleId> members;

    int length() const { return static_cast<int>(edges.size()); }
  };

  int num_cycles() const { return static_cast<int>(cycles_.size()); }
  const Cycle& cycle(int s) const { return cycles_[s]; }

  // Cycle id of a recursive module (-1 otherwise) — the paper's s.
  int CycleOf(ModuleId m) const { return cycle_of_[m]; }
  // Index (within cycle CycleOf(m)) of the edge sourced at m — the paper's t
  // for a recursion whose first unfolded member is m.
  int CycleStartIndex(ModuleId m) const { return cycle_index_of_[m]; }

  // The cycle edge at offset `index` (taken modulo the cycle length), i.e.
  // the paper's (k_{t+a}, i_{t+a}) lookups.
  PgEdge CycleEdgeAt(int s, int index) const;

 private:
  const Grammar* grammar_;
  Digraph graph_;                 // one node per module
  std::vector<PgEdge> edge_ids_;  // per digraph edge id
  BoolMatrix closure_;
  bool strictly_linear_ = true;
  std::vector<Cycle> cycles_;
  std::vector<int> cycle_of_;        // per module, -1 if non-recursive
  std::vector<int> cycle_index_of_;  // per module, -1 if non-recursive
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_PRODUCTION_GRAPH_H_
