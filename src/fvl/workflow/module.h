// Modules (Def. 1): a module has named identity and a number of input and
// output ports. Ports are identified positionally (0-based); the paper's
// examples use 1-based positions, converted at the test boundary.

#ifndef FVL_WORKFLOW_MODULE_H_
#define FVL_WORKFLOW_MODULE_H_

#include <string>

namespace fvl {

// Index into a grammar's module table.
using ModuleId = int;
// Index into a grammar's production table (the paper's k, 0-based here).
using ProductionId = int;

constexpr ModuleId kInvalidModule = -1;

struct Module {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_MODULE_H_
