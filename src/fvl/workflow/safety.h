// Safety of workflow specifications (Defs. 12–13, Lemma 1, Thm. 2).
//
// A specification is safe iff any two all-atomic workflows derivable from
// the same composite module have identical dependencies between initial
// inputs and final outputs. By Lemma 1 this holds iff the atomic assignment
// extends to a unique *full dependency assignment* λ* over all modules under
// which every production M ->f W is consistent
// (λ*(M)[x][y] == reach_{W^{λ*}}(f(x), f(y))).
//
// CheckSafety implements the paper's worklist algorithm: productions become
// verifiable once λ* is defined for all their members; the first production
// of a module defines λ*(M), later ones must agree. Runs in O(|G|^2).
// On success the result holds λ*; failures carry a structured code:
// kIncompleteAssignment (a member has no λ), kUnsafeSpecification (two
// productions disagree), kImproperGrammar (a production never became
// verifiable).
//
// The same routine checks safety of views: pass the per-module
// "composite in this view" flags and the view's perceived assignment λ'.

#ifndef FVL_WORKFLOW_SAFETY_H_
#define FVL_WORKFLOW_SAFETY_H_

#include <vector>

#include "fvl/util/status.h"
#include "fvl/workflow/grammar.h"

namespace fvl {

// `composite` selects which modules are treated as composite (their
// productions are active); modules not in `composite` must have `base_deps`
// defined if they occur in an active production. Pass nullptr to use the
// grammar's own composite set (= safety of the specification itself).
[[nodiscard]] Result<DependencyAssignment> CheckSafety(
    const Grammar& grammar, const DependencyAssignment& base_deps,
    const std::vector<bool>* composite = nullptr);

}  // namespace fvl

#endif  // FVL_WORKFLOW_SAFETY_H_
