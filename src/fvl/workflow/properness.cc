#include "fvl/workflow/properness.h"

#include <algorithm>
#include <deque>

#include "fvl/graph/digraph.h"
#include "fvl/graph/scc.h"
#include "fvl/util/check.h"

namespace fvl {

namespace {

// A unit production is M -> W where W consists of a single member; the
// derivation step merely renames M (modulo the port bijection).
bool IsUnitProduction(const Production& p) { return p.rhs.num_members() == 1; }

// True iff the unit production's port bijection is the identity (initial
// input x is the member's input x, and similarly for outputs).
bool UnitBijectionIsIdentity(const Production& p) {
  for (int x = 0; x < static_cast<int>(p.rhs.initial_inputs.size()); ++x) {
    if (p.rhs.initial_inputs[x] != PortRef{0, x}) return false;
  }
  for (int y = 0; y < static_cast<int>(p.rhs.final_outputs.size()); ++y) {
    if (p.rhs.final_outputs[y] != PortRef{0, y}) return false;
  }
  return true;
}

std::vector<bool> ComputeProductive(const Grammar& g) {
  std::vector<bool> productive(g.num_modules(), false);
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    if (!g.is_composite(m)) productive[m] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProductionId k = 0; k < g.num_productions(); ++k) {
      const Production& p = g.production(k);
      if (productive[p.lhs]) continue;
      bool all = true;
      for (ModuleId member : p.rhs.members) {
        if (!productive[member]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[p.lhs] = true;
        changed = true;
      }
    }
  }
  return productive;
}

std::vector<bool> ComputeDerivable(const Grammar& g) {
  // Derivable = reachable from S through production membership (the paper's
  // S =>* W containing M allows any intermediate workflow).
  std::vector<bool> derivable(g.num_modules(), false);
  std::deque<ModuleId> queue = {g.start()};
  derivable[g.start()] = true;
  while (!queue.empty()) {
    ModuleId m = queue.front();
    queue.pop_front();
    for (ProductionId k : g.ProductionsOf(m)) {
      for (ModuleId member : g.production(k).rhs.members) {
        if (!derivable[member]) {
          derivable[member] = true;
          queue.push_back(member);
        }
      }
    }
  }
  return derivable;
}

// Finds one cycle among unit productions between composite modules, if any.
std::vector<ModuleId> FindUnitCycle(const Grammar& g) {
  // unit_next[m] = composite modules reachable from m by one unit production.
  std::vector<std::vector<ModuleId>> unit_next(g.num_modules());
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    const Production& p = g.production(k);
    if (IsUnitProduction(p) && g.is_composite(p.rhs.members[0])) {
      unit_next[p.lhs].push_back(p.rhs.members[0]);
    }
  }
  // DFS with colors.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(g.num_modules(), Color::kWhite);
  std::vector<ModuleId> parent(g.num_modules(), kInvalidModule);

  for (ModuleId root = 0; root < g.num_modules(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<ModuleId, size_t>> stack = {{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, pos] = stack.back();
      if (pos < unit_next[node].size()) {
        ModuleId next = unit_next[node][pos++];
        if (color[next] == Color::kGray) {
          // Found a cycle: walk back from node to next.
          std::vector<ModuleId> cycle = {next};
          for (ModuleId walk = node; walk != next; walk = parent[walk]) {
            cycle.push_back(walk);
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          parent[next] = node;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

bool PropernessReport::IsProper(const Grammar& g) const {
  if (has_unit_cycle) return false;
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    if (!g.is_composite(m)) continue;
    if (!derivable[m] || !productive[m]) return false;
  }
  return true;
}

std::string PropernessReport::Describe(const Grammar& g) const {
  std::string out;
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    if (!g.is_composite(m)) continue;
    if (!derivable[m]) out += "underivable: " + g.module(m).name + "\n";
    if (!productive[m]) out += "unproductive: " + g.module(m).name + "\n";
  }
  if (has_unit_cycle) {
    out += "unit cycle:";
    for (ModuleId m : unit_cycle_witness) out += " " + g.module(m).name;
    out += "\n";
  }
  return out.empty() ? "proper" : out;
}

PropernessReport AnalyzeProperness(const Grammar& g) {
  PropernessReport report;
  report.productive = ComputeProductive(g);
  report.derivable = ComputeDerivable(g);
  report.unit_cycle_witness = FindUnitCycle(g);
  report.has_unit_cycle = !report.unit_cycle_witness.empty();
  return report;
}

Result<Grammar> MakeProper(const Grammar& g) {
  // Step 1: eliminate unit cycles. Modules on a common unit cycle derive
  // exactly each other's workflows; we merge their production sets onto each
  // member and drop the intra-cycle unit productions.
  std::vector<Production> productions;
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    productions.push_back(g.production(k));
  }

  Grammar working(g.modules(), [&] {
    std::vector<bool> composite(g.num_modules());
    for (ModuleId m = 0; m < g.num_modules(); ++m) composite[m] = g.is_composite(m);
    return composite;
  }(), g.start(), productions);

  // Build the unit graph over composite modules and merge every non-trivial
  // strongly connected class in one pass: all modules on a common unit cycle
  // derive exactly each other's workflows, so each receives every
  // non-intra-class production of the class and the intra-class unit
  // productions are dropped. A single pass makes the unit graph acyclic on
  // its condensation, so no new unit cycles can appear.
  if (!FindUnitCycle(working).empty()) {
    Digraph unit_graph(working.num_modules());
    for (ProductionId k = 0; k < working.num_productions(); ++k) {
      const Production& p = working.production(k);
      if (IsUnitProduction(p) && working.is_composite(p.rhs.members[0])) {
        unit_graph.AddEdge(p.lhs, p.rhs.members[0]);
      }
    }
    SccResult scc = StronglyConnectedComponents(unit_graph);
    std::vector<int> component_size(scc.num_components, 0);
    for (ModuleId m = 0; m < working.num_modules(); ++m) {
      ++component_size[scc.component[m]];
    }
    auto same_class = [&](ModuleId a, ModuleId b) {
      if (scc.component[a] != scc.component[b]) return false;
      if (component_size[scc.component[a]] > 1) return true;
      return a == b;  // singleton class: only a self-loop is intra-class
    };

    std::vector<Production> next_productions;
    // Per class, its non-intra-class productions (for cloning).
    std::vector<std::vector<Production>> class_shared(scc.num_components);
    for (ProductionId k = 0; k < working.num_productions(); ++k) {
      const Production& p = working.production(k);
      bool intra_class_unit = IsUnitProduction(p) &&
                              working.is_composite(p.rhs.members[0]) &&
                              same_class(p.lhs, p.rhs.members[0]);
      if (intra_class_unit) {
        if (!UnitBijectionIsIdentity(p)) {
          return Status::Error(
              ErrorCode::kImproperGrammar,
              "unit cycle with non-identity port bijection through '" +
                  working.module(p.lhs).name + "' is not supported");
        }
        continue;  // drop
      }
      next_productions.push_back(p);
      if (component_size[scc.component[p.lhs]] > 1 ||
          same_class(p.lhs, p.lhs)) {
        class_shared[scc.component[p.lhs]].push_back(p);
      }
    }
    for (ModuleId m = 0; m < working.num_modules(); ++m) {
      if (!working.is_composite(m)) continue;
      if (component_size[scc.component[m]] <= 1) continue;
      for (const Production& p : class_shared[scc.component[m]]) {
        if (p.lhs == m) continue;
        Production clone = p;
        clone.lhs = m;
        next_productions.push_back(clone);
      }
    }
    working = Grammar(working.modules(), [&] {
      std::vector<bool> composite(working.num_modules());
      for (ModuleId m = 0; m < working.num_modules(); ++m) {
        composite[m] = working.is_composite(m);
      }
      return composite;
    }(), working.start(), next_productions);
    FVL_CHECK(FindUnitCycle(working).empty());
  }

  // Step 2: drop productions that mention unproductive modules.
  std::vector<bool> productive = ComputeProductive(working);
  if (!productive[working.start()]) {
    return Status::Error(ErrorCode::kImproperGrammar,
                         "language is empty (start is unproductive)");
  }
  std::vector<Production> surviving;
  for (ProductionId k = 0; k < working.num_productions(); ++k) {
    const Production& p = working.production(k);
    bool keep = productive[p.lhs];
    for (ModuleId member : p.rhs.members) keep = keep && productive[member];
    if (keep) surviving.push_back(p);
  }
  working = Grammar(working.modules(), [&] {
    std::vector<bool> composite(working.num_modules());
    for (ModuleId m = 0; m < working.num_modules(); ++m) {
      composite[m] = working.is_composite(m);
    }
    return composite;
  }(), working.start(), surviving);

  // Step 3: drop underivable modules. Module ids must stay stable for
  // callers, so underivable modules are retained in the table but all their
  // productions are removed and they are no longer marked composite unless
  // derivable. (The language only depends on derivable modules.)
  std::vector<bool> derivable = ComputeDerivable(working);
  std::vector<Production> reachable_productions;
  for (ProductionId k = 0; k < working.num_productions(); ++k) {
    if (derivable[working.production(k).lhs]) {
      reachable_productions.push_back(working.production(k));
    }
  }
  std::vector<bool> composite(working.num_modules(), false);
  for (const Production& p : reachable_productions) composite[p.lhs] = true;
  composite[working.start()] = true;

  Grammar result(working.modules(), composite, working.start(),
                 reachable_productions);
  FVL_CHECK(!result.Validate().has_value());
  return result;
}

}  // namespace fvl
