#include "fvl/workflow/view.h"

#include <deque>

#include "fvl/util/check.h"

namespace fvl {

View MakeDefaultView(const Specification& spec) {
  View view;
  view.expandable.resize(spec.grammar.num_modules());
  for (ModuleId m = 0; m < spec.grammar.num_modules(); ++m) {
    view.expandable[m] = spec.grammar.is_composite(m);
  }
  view.perceived = spec.deps;
  return view;
}

Result<CompiledView> CompiledView::Compile(const Grammar& grammar,
                                           View view) {
  if (static_cast<int>(view.expandable.size()) != grammar.num_modules()) {
    return Status::Error(ErrorCode::kInvalidView,
                         "expandable flags do not match the module table");
  }
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (view.expandable[m] && !grammar.is_composite(m)) {
      return Status::Error(ErrorCode::kInvalidView,
                           "module '" + grammar.module(m).name +
                               "' is atomic and cannot be expandable");
    }
  }
  if (!view.expandable[grammar.start()]) {
    return Status::Error(
        ErrorCode::kInvalidView,
        "the start module must be expandable in a proper view");
  }

  // Derivability in G_Δ'.
  std::vector<bool> derivable(grammar.num_modules(), false);
  std::deque<ModuleId> queue = {grammar.start()};
  derivable[grammar.start()] = true;
  while (!queue.empty()) {
    ModuleId m = queue.front();
    queue.pop_front();
    if (!view.expandable[m]) continue;
    for (ProductionId k : grammar.ProductionsOf(m)) {
      for (ModuleId member : grammar.production(k).rhs.members) {
        if (!derivable[member]) {
          derivable[member] = true;
          queue.push_back(member);
        }
      }
    }
  }

  // Properness of G_Δ': every expandable module derivable and productive
  // (treating non-expandable modules as terminal).
  std::vector<bool> productive(grammar.num_modules(), false);
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (!view.expandable[m]) productive[m] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
      const Production& p = grammar.production(k);
      if (!view.expandable[p.lhs] || productive[p.lhs]) continue;
      bool all = true;
      for (ModuleId member : p.rhs.members) all = all && productive[member];
      if (all) {
        productive[p.lhs] = true;
        changed = true;
      }
    }
  }
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (!view.expandable[m]) continue;
    if (!derivable[m]) {
      return Status::Error(ErrorCode::kImproperView,
                           "view is not proper: expandable module '" +
                               grammar.module(m).name + "' is underivable");
    }
    if (!productive[m]) {
      return Status::Error(ErrorCode::kImproperView,
                           "view is not proper: expandable module '" +
                               grammar.module(m).name + "' is unproductive");
    }
  }

  // λ' coverage of derivable non-expandable modules.
  std::vector<ModuleId> needs_deps;
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (derivable[m] && !view.expandable[m]) needs_deps.push_back(m);
  }
  if (auto coverage_error =
          view.perceived.ValidateCoverage(grammar.modules(), needs_deps)) {
    return Status::Error(ErrorCode::kIncompleteAssignment, *coverage_error);
  }

  // Safety of the view (Def. 13 applied to G_U). Specification-level codes
  // from the shared checker are re-reported as their view-level siblings.
  Result<DependencyAssignment> safety =
      CheckSafety(grammar, view.perceived, &view.expandable);
  if (!safety.ok()) {
    switch (safety.code()) {
      case ErrorCode::kUnsafeSpecification:
        return Status::Error(
            ErrorCode::kUnsafeView,
            "view is unsafe: " + safety.status().message());
      case ErrorCode::kImproperGrammar:
        return Status::Error(
            ErrorCode::kImproperView,
            "view is not proper: " + safety.status().message());
      default:
        return Status::Error(safety.code(), safety.status().message());
    }
  }

  CompiledView compiled;
  compiled.grammar_ = &grammar;
  compiled.view_ = std::move(view);
  compiled.derivable_ = std::move(derivable);
  compiled.full_ = std::move(safety).value();
  return compiled;
}

bool CompiledView::IsWhiteBox(const DependencyAssignment& true_full) const {
  for (ModuleId m = 0; m < grammar_->num_modules(); ++m) {
    if (!derivable_[m]) continue;
    if (!true_full.IsDefined(m) || !full_.IsDefined(m)) return false;
    if (true_full.Get(m) != full_.Get(m)) return false;
  }
  return true;
}

bool CompiledView::IsBlackBox() const {
  for (ModuleId m = 0; m < grammar_->num_modules(); ++m) {
    if (!derivable_[m]) continue;
    if (!full_.IsDefined(m) || !full_.Get(m).IsFull()) return false;
  }
  return true;
}

}  // namespace fvl
