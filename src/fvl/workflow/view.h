// Workflow views (Def. 9): a view over a specification G^λ is U = (Δ', λ')
// with Δ' ⊆ Δ a subset of composite modules that remain expandable and λ' a
// new ("perceived") dependency assignment for the modules that are atomic in
// the view. λ' may differ from the true dependencies (grey-box, Remark 1).
//
// CompiledView validates a view (Δ' ⊆ Δ, properness of the restricted
// grammar G_Δ', λ'-coverage, safety) and precomputes the view's full
// assignment λ'^* used by labeling and by the ground-truth oracle.

#ifndef FVL_WORKFLOW_VIEW_H_
#define FVL_WORKFLOW_VIEW_H_

#include <vector>

#include "fvl/util/status.h"
#include "fvl/workflow/grammar.h"
#include "fvl/workflow/safety.h"

namespace fvl {

struct View {
  // Per module: true iff the module is in Δ' (its productions stay visible).
  std::vector<bool> expandable;
  // λ': must cover every view-derivable module outside Δ'.
  DependencyAssignment perceived;

  // Structural equality — two equal views compile to the same label, which
  // is what the service's view registry deduplicates on.
  bool operator==(const View&) const = default;
};

// The default view (Δ, λ) over a specification.
View MakeDefaultView(const Specification& spec);

class CompiledView {
 public:
  // Fails with kInvalidView (structural errors), kImproperView,
  // kIncompleteAssignment (λ' coverage) or kUnsafeView.
  [[nodiscard]] static Result<CompiledView> Compile(const Grammar& grammar, View view);

  const Grammar& grammar() const { return *grammar_; }
  const View& view() const { return view_; }

  bool IsExpandable(ModuleId m) const { return view_.expandable[m]; }
  // Productions of expandable modules.
  bool IsActiveProduction(ProductionId k) const {
    return view_.expandable[grammar_->production(k).lhs];
  }
  // Modules derivable in the view grammar G_Δ'.
  bool IsDerivable(ModuleId m) const { return derivable_[m]; }

  // The view's full dependency assignment λ'^* (defined for every derivable
  // module).
  const DependencyAssignment& full() const { return full_; }

  // Remark 1: the view is white-box iff λ'^* agrees with the given true full
  // assignment on every view-derivable module.
  bool IsWhiteBox(const DependencyAssignment& true_full) const;

  // True iff λ'^* is complete (all-ones) for every derivable module — the
  // coarse-grained situation exploited by Matrix-Free decoding (§6.4).
  bool IsBlackBox() const;

 private:
  const Grammar* grammar_ = nullptr;
  View view_;
  std::vector<bool> derivable_;
  DependencyAssignment full_;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_VIEW_H_
