#include "fvl/workflow/user_defined_view.h"

#include <algorithm>

#include "fvl/graph/digraph.h"
#include "fvl/graph/reachability.h"
#include "fvl/util/check.h"
#include "fvl/workflow/production_graph.h"

namespace fvl {

GroupBoundary ComputeGroupBoundary(const Grammar& grammar, ProductionId k,
                                   const std::vector<int>& member_positions) {
  const SimpleWorkflow& w = grammar.production(k).rhs;
  GroupBoundary boundary;
  boundary.in_group.assign(w.num_members(), false);
  for (int pos : member_positions) {
    FVL_CHECK(pos >= 0 && pos < w.num_members());
    boundary.in_group[pos] = true;
  }

  // Classify each port of each grouped member.
  // Inputs: fed by an edge from outside the group, or initial -> boundary;
  // fed by an internal edge -> hidden.
  std::vector<std::vector<bool>> input_internal(w.num_members());
  std::vector<std::vector<bool>> output_internal(w.num_members());
  for (int m = 0; m < w.num_members(); ++m) {
    const Module& module = grammar.module(w.members[m]);
    input_internal[m].assign(module.num_inputs, false);
    output_internal[m].assign(module.num_outputs, false);
  }
  for (size_t i = 0; i < w.edges.size(); ++i) {
    const DataEdge& e = w.edges[i];
    bool src_in = boundary.in_group[e.src.member];
    bool dst_in = boundary.in_group[e.dst.member];
    if (src_in && dst_in) {
      boundary.internal_edges.push_back(static_cast<int>(i));
      output_internal[e.src.member][e.src.port] = true;
      input_internal[e.dst.member][e.dst.port] = true;
    }
  }
  for (int m = 0; m < w.num_members(); ++m) {
    if (!boundary.in_group[m]) continue;
    for (int p = 0; p < static_cast<int>(input_internal[m].size()); ++p) {
      if (!input_internal[m][p]) boundary.inputs.push_back({m, p});
    }
    for (int p = 0; p < static_cast<int>(output_internal[m].size()); ++p) {
      if (!output_internal[m][p]) boundary.outputs.push_back({m, p});
    }
  }
  auto port_order = [](const PortRef& a, const PortRef& b) {
    return a.member != b.member ? a.member < b.member : a.port < b.port;
  };
  std::sort(boundary.inputs.begin(), boundary.inputs.end(), port_order);
  std::sort(boundary.outputs.begin(), boundary.outputs.end(), port_order);
  return boundary;
}

namespace {

// Builds the §5 virtual grammar: appends one module F per group, replaces
// each grouped production M -> W by M -> W9, and appends F -> W10.
Grammar BuildVirtualGrammar(const Grammar& grammar,
                            const std::vector<ModuleGroup>& groups,
                            const std::vector<GroupBoundary>& boundaries,
                            std::vector<ModuleId>* group_module_ids,
                            Status* error) {
  std::vector<Module> modules = grammar.modules();
  std::vector<bool> composite(grammar.num_modules());
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    composite[m] = grammar.is_composite(m);
  }
  group_module_ids->clear();
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    Module f;
    f.name = groups[gi].name;
    f.num_inputs = static_cast<int>(boundaries[gi].inputs.size());
    f.num_outputs = static_cast<int>(boundaries[gi].outputs.size());
    modules.push_back(f);
    composite.push_back(true);
    group_module_ids->push_back(static_cast<ModuleId>(modules.size()) - 1);
  }

  auto boundary_input_index = [&](const GroupBoundary& b, PortRef p) {
    auto it = std::find(b.inputs.begin(), b.inputs.end(), p);
    FVL_CHECK(it != b.inputs.end());
    return static_cast<int>(it - b.inputs.begin());
  };
  auto boundary_output_index = [&](const GroupBoundary& b, PortRef p) {
    auto it = std::find(b.outputs.begin(), b.outputs.end(), p);
    FVL_CHECK(it != b.outputs.end());
    return static_cast<int>(it - b.outputs.begin());
  };

  std::vector<Production> productions;
  for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
    int gi = -1;
    for (size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].production == k) gi = static_cast<int>(i);
    }
    if (gi == -1) {
      productions.push_back(grammar.production(k));
      continue;
    }
    const Production& p = grammar.production(k);
    const SimpleWorkflow& w = p.rhs;
    const GroupBoundary& b = boundaries[gi];
    ModuleId f_id = (*group_module_ids)[gi];

    // --- W9: collapse the group to one F member. ---
    // Member mapping: ungrouped members keep relative order; F is placed at
    // the position of the first grouped member, then the member list is
    // re-sorted topologically below via edge validation order. We first build
    // with F at the first grouped slot and verify topological validity; if
    // collapsing creates a backward edge the grouping is rejected by the
    // caller's acyclicity check, so this cannot fail here.
    std::vector<int> new_index(w.num_members(), -1);
    SimpleWorkflow w9;
    int f_member = -1;
    for (int m = 0; m < w.num_members(); ++m) {
      if (b.in_group[m]) {
        if (f_member == -1) {
          f_member = w9.num_members();
          w9.members.push_back(f_id);
        }
      } else {
        new_index[m] = w9.num_members();
        w9.members.push_back(w.members[m]);
      }
    }
    auto map_src = [&](PortRef src) -> PortRef {
      if (b.in_group[src.member]) {
        return {f_member, boundary_output_index(b, src)};
      }
      return {new_index[src.member], src.port};
    };
    auto map_dst = [&](PortRef dst) -> PortRef {
      if (b.in_group[dst.member]) {
        return {f_member, boundary_input_index(b, dst)};
      }
      return {new_index[dst.member], dst.port};
    };
    std::vector<bool> internal(w.edges.size(), false);
    for (int idx : b.internal_edges) internal[idx] = true;
    for (size_t i = 0; i < w.edges.size(); ++i) {
      if (internal[i]) continue;
      w9.edges.push_back({map_src(w.edges[i].src), map_dst(w.edges[i].dst)});
    }
    for (const PortRef& p0 : w.initial_inputs) w9.initial_inputs.push_back(map_dst(p0));
    for (const PortRef& p0 : w.final_outputs) w9.final_outputs.push_back(map_src(p0));

    // Re-sort members topologically if collapsing disturbed the order.
    {
      Digraph member_dag(w9.num_members());
      for (const DataEdge& e : w9.edges) {
        if (e.src.member != e.dst.member) {
          member_dag.AddEdge(e.src.member, e.dst.member);
        }
      }
      std::vector<int> order = TopologicalOrder(member_dag);
      if (order.empty()) {
        *error = Status::Error(
            ErrorCode::kInvalidGroup,
            "grouping creates a cycle through '" + groups[gi].name + "'");
        return Grammar();
      }
      std::vector<int> rank(w9.num_members());
      for (int pos = 0; pos < static_cast<int>(order.size()); ++pos) {
        rank[order[pos]] = pos;
      }
      SimpleWorkflow sorted;
      sorted.members.resize(w9.num_members());
      for (int m = 0; m < w9.num_members(); ++m) {
        sorted.members[rank[m]] = w9.members[m];
      }
      auto remap = [&](PortRef p0) { return PortRef{rank[p0.member], p0.port}; };
      for (const DataEdge& e : w9.edges) {
        sorted.edges.push_back({remap(e.src), remap(e.dst)});
      }
      for (const PortRef& p0 : w9.initial_inputs) sorted.initial_inputs.push_back(remap(p0));
      for (const PortRef& p0 : w9.final_outputs) sorted.final_outputs.push_back(remap(p0));
      w9 = std::move(sorted);
    }
    productions.push_back({p.lhs, std::move(w9)});

    // --- W10: the group's subworkflow, F's production. ---
    SimpleWorkflow w10;
    std::vector<int> group_index(w.num_members(), -1);
    for (int m = 0; m < w.num_members(); ++m) {
      if (b.in_group[m]) {
        group_index[m] = w10.num_members();
        w10.members.push_back(w.members[m]);
      }
    }
    for (int idx : b.internal_edges) {
      const DataEdge& e = w.edges[idx];
      w10.edges.push_back({{group_index[e.src.member], e.src.port},
                           {group_index[e.dst.member], e.dst.port}});
    }
    for (const PortRef& p0 : b.inputs) {
      w10.initial_inputs.push_back({group_index[p0.member], p0.port});
    }
    for (const PortRef& p0 : b.outputs) {
      w10.final_outputs.push_back({group_index[p0.member], p0.port});
    }
    productions.push_back({f_id, std::move(w10)});
  }

  Grammar result(std::move(modules), std::move(composite), grammar.start(),
                 std::move(productions));
  if (auto validation = result.Validate()) {
    *error = Status::Error(ErrorCode::kInvalidGroup,
                           "virtual grammar invalid: " + *validation);
    return Grammar();
  }
  return result;
}

}  // namespace

Result<GroupedView> GroupedView::Compile(const Grammar& grammar, View base,
                                         std::vector<ModuleGroup> groups) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kInvalidGroup, message);
  };

  GroupedView result;
  result.grammar_ = &grammar;
  result.group_of_production_.assign(grammar.num_productions(), -1);

  ProductionGraph pg(&grammar);

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    ModuleGroup& group = groups[gi];
    if (group.production < 0 || group.production >= grammar.num_productions()) {
      return fail("group references an unknown production");
    }
    if (result.group_of_production_[group.production] != -1) {
      return fail("at most one group per production is supported");
    }
    if (group.member_positions.empty()) return fail("empty group");
    std::sort(group.member_positions.begin(), group.member_positions.end());
    const Production& p = grammar.production(group.production);
    for (int pos : group.member_positions) {
      if (pos < 0 || pos >= p.rhs.num_members()) {
        return fail("group member position out of range");
      }
      ModuleId member = p.rhs.members[pos];
      if (base.expandable.size() == static_cast<size_t>(grammar.num_modules()) &&
          base.expandable[member]) {
        return fail("grouped member '" + grammar.module(member).name +
                    "' must not be expandable in the base view");
      }
      // Grouping a member of the lhs's own recursion would sever the cycle
      // that existing data labels encode; reject.
      if (pg.Reaches(member, p.lhs)) {
        return fail("grouped member '" + grammar.module(member).name +
                    "' participates in the recursion of '" +
                    grammar.module(p.lhs).name + "'");
      }
    }
    result.group_of_production_[group.production] = static_cast<int>(gi);
    result.boundaries_.push_back(
        ComputeGroupBoundary(grammar, group.production, group.member_positions));
    const GroupBoundary& b = result.boundaries_.back();
    if (group.perceived_deps.rows() != static_cast<int>(b.inputs.size()) ||
        group.perceived_deps.cols() != static_cast<int>(b.outputs.size())) {
      return fail("perceived dependency matrix of '" + group.name +
                  "' has the wrong shape: expected " +
                  std::to_string(b.inputs.size()) + "x" +
                  std::to_string(b.outputs.size()));
    }
    Module f{group.name, static_cast<int>(b.inputs.size()),
             static_cast<int>(b.outputs.size())};
    if (auto dep_error =
            DependencyAssignment::ValidateProper(f, group.perceived_deps)) {
      return fail(*dep_error);
    }
  }
  result.groups_ = std::move(groups);

  // Virtual grammar + safety of the projected view.
  Status virtual_error;
  Grammar virtual_grammar =
      BuildVirtualGrammar(grammar, result.groups_, result.boundaries_,
                          &result.virtual_group_module_, &virtual_error);
  if (virtual_grammar.num_modules() == 0) return virtual_error;
  result.virtual_grammar_ =
      std::make_shared<const Grammar>(std::move(virtual_grammar));

  View virtual_view;
  virtual_view.expandable = base.expandable;
  virtual_view.expandable.resize(result.virtual_grammar_->num_modules(), false);
  virtual_view.perceived = base.perceived;
  for (size_t gi = 0; gi < result.groups_.size(); ++gi) {
    virtual_view.perceived.Set(result.virtual_group_module_[gi],
                               result.groups_[gi].perceived_deps);
  }
  Result<CompiledView> compiled =
      CompiledView::Compile(*result.virtual_grammar_, std::move(virtual_view));
  if (!compiled.ok()) return compiled.status();
  result.base_ = std::move(compiled).value();

  // Overlays for labeling against the original grammar.
  for (size_t gi = 0; gi < result.groups_.size(); ++gi) {
    const ModuleGroup& group = result.groups_[gi];
    const GroupBoundary& b = result.boundaries_[gi];
    PortGraphOverlay overlay;
    overlay.suppress_member.assign(
        grammar.production(group.production).rhs.num_members(), false);
    for (int pos : group.member_positions) overlay.suppress_member[pos] = true;
    overlay.suppressed_edges = b.internal_edges;
    for (int bi = 0; bi < group.perceived_deps.rows(); ++bi) {
      for (int bo = 0; bo < group.perceived_deps.cols(); ++bo) {
        if (group.perceived_deps.Get(bi, bo)) {
          overlay.extra_deps.push_back({b.inputs[bi], b.outputs[bo]});
        }
      }
    }
    result.overlays_.push_back(std::move(overlay));
  }
  return result;
}

int GroupedView::GroupAt(ProductionId k, int position) const {
  int gi = group_of_production_[k];
  if (gi == -1) return -1;
  const auto& positions = groups_[gi].member_positions;
  if (std::binary_search(positions.begin(), positions.end(), position)) {
    return gi;
  }
  return -1;
}

const PortGraphOverlay* GroupedView::OverlayFor(ProductionId k) const {
  int gi = group_of_production_[k];
  return gi == -1 ? nullptr : &overlays_[gi];
}

bool GroupedView::InputPortVisible(ProductionId k, int member, int port) const {
  int gi = GroupAt(k, member);
  if (gi == -1) return true;
  const auto& inputs = boundaries_[gi].inputs;
  return std::find(inputs.begin(), inputs.end(), PortRef{member, port}) !=
         inputs.end();
}

bool GroupedView::OutputPortVisible(ProductionId k, int member,
                                    int port) const {
  int gi = GroupAt(k, member);
  if (gi == -1) return true;
  const auto& outputs = boundaries_[gi].outputs;
  return std::find(outputs.begin(), outputs.end(), PortRef{member, port}) !=
         outputs.end();
}

}  // namespace fvl
