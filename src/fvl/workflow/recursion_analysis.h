// Recursion structure of workflow grammars (Defs. 14–16, Thm. 7, Lemma 3).
//
// * linear-recursive: every workflow derivable from a composite module M
//   contains at most one instance of M. Decided via Lemma 3: for every
//   production M -> W, M is reachable (in P(G), reflexively) from at most
//   one member of W, counting duplicate members individually.
// * strictly linear-recursive: all cycles of P(G) are vertex-disjoint.
//   Decided two ways (cross-checked in tests): via the SCC structure
//   (ProductionGraph::strictly_linear) and via the paper's Thm.-7 algorithm
//   (for each vertex, find a cycle through it by BFS, then look for a second
//   cycle after removing each edge of the first).

#ifndef FVL_WORKFLOW_RECURSION_ANALYSIS_H_
#define FVL_WORKFLOW_RECURSION_ANALYSIS_H_

#include "fvl/workflow/grammar.h"
#include "fvl/workflow/production_graph.h"

namespace fvl {

bool IsLinearRecursive(const ProductionGraph& pg);

bool IsStrictlyLinearRecursive(const ProductionGraph& pg);

// The Thm.-7 proof algorithm, implemented independently of the SCC route.
bool IsStrictlyLinearRecursivePaperAlgorithm(const ProductionGraph& pg);

}  // namespace fvl

#endif  // FVL_WORKFLOW_RECURSION_ANALYSIS_H_
