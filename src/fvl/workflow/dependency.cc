#include "fvl/workflow/dependency.h"

#include "fvl/util/check.h"

namespace fvl {

const BoolMatrix& DependencyAssignment::Get(ModuleId m) const {
  FVL_CHECK(IsDefined(m));
  return *deps_[m];
}

void DependencyAssignment::Set(ModuleId m, BoolMatrix deps) {
  FVL_CHECK(m >= 0);
  if (m >= num_modules()) deps_.resize(m + 1);
  deps_[m] = std::move(deps);
}

void DependencyAssignment::Clear(ModuleId m) {
  if (m >= 0 && m < num_modules()) deps_[m].reset();
}

std::optional<std::string> DependencyAssignment::ValidateProper(
    const Module& module, const BoolMatrix& deps) {
  if (deps.rows() != module.num_inputs || deps.cols() != module.num_outputs) {
    return "dependency matrix for module '" + module.name + "' has shape " +
           std::to_string(deps.rows()) + "x" + std::to_string(deps.cols()) +
           ", expected " + std::to_string(module.num_inputs) + "x" +
           std::to_string(module.num_outputs);
  }
  for (int i = 0; i < deps.rows(); ++i) {
    if (!deps.RowAny(i)) {
      return "input " + std::to_string(i) + " of module '" + module.name +
             "' contributes to no output (violates Def. 6)";
    }
  }
  for (int o = 0; o < deps.cols(); ++o) {
    if (!deps.ColAny(o)) {
      return "output " + std::to_string(o) + " of module '" + module.name +
             "' depends on no input (violates Def. 6)";
    }
  }
  return std::nullopt;
}

std::optional<std::string> DependencyAssignment::ValidateCoverage(
    const std::vector<Module>& modules,
    const std::vector<ModuleId>& required) const {
  for (ModuleId m : required) {
    FVL_CHECK(m >= 0 && m < static_cast<int>(modules.size()));
    if (!IsDefined(m)) {
      return "no dependency assignment for module '" + modules[m].name + "'";
    }
    if (auto error = ValidateProper(modules[m], Get(m))) return error;
  }
  return std::nullopt;
}

}  // namespace fvl
