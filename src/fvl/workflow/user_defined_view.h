// User-defined views (§5): views constructed by grouping members of a
// production into a new composite module F whose internals (members, their
// expansions, and the data items flowing between them) are hidden, and whose
// perceived input/output dependencies λ'(F) are supplied by the view author.
//
// Following §5, a user-defined view is *labeled against the original
// specification*: it is projected onto a regular view by (virtually)
// expanding F, and the view label is computed over the original production
// graph using the new dependency assignment. Existing data labels therefore
// keep working — the essential goal of view-adaptive labeling. The "virtual"
// grammar (F added, the grouped production split in two) exists only for
// validation/safety checking and inspection.

#ifndef FVL_WORKFLOW_USER_DEFINED_VIEW_H_
#define FVL_WORKFLOW_USER_DEFINED_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "fvl/util/status.h"
#include "fvl/workflow/port_graph.h"
#include "fvl/workflow/view.h"

namespace fvl {

// A request to group the given member positions of one production into a new
// module named `name` with perceived dependencies `perceived_deps` (rows =
// group boundary inputs, cols = group boundary outputs, in boundary order —
// see GroupBoundary).
struct ModuleGroup {
  ProductionId production = -1;
  std::vector<int> member_positions;  // ascending
  std::string name;
  BoolMatrix perceived_deps;
};

// Boundary ports of a group, ordered by (member position, port index).
struct GroupBoundary {
  std::vector<PortRef> inputs;   // fed from outside the group (or initial)
  std::vector<PortRef> outputs;  // consumed outside the group (or final)
  std::vector<bool> in_group;    // per member of the production
  // Indices (into rhs.edges) of the group-internal data edges (hidden).
  std::vector<int> internal_edges;
};

GroupBoundary ComputeGroupBoundary(const Grammar& grammar, ProductionId k,
                                   const std::vector<int>& member_positions);

class GroupedView {
 public:
  // `base` is the regular (Δ', λ') part. Grouped members must not be
  // expandable in `base`, and at most one group per production (a pragmatic
  // restriction; multiple disjoint groups would compose the same way).
  // Structural grouping errors report kInvalidGroup; errors of the projected
  // regular view keep their CompiledView::Compile codes.
  [[nodiscard]] static Result<GroupedView> Compile(const Grammar& grammar, View base,
                                     std::vector<ModuleGroup> groups);

  const Grammar& grammar() const { return *grammar_; }
  const CompiledView& base() const { return base_; }
  const std::vector<ModuleGroup>& groups() const { return groups_; }
  const GroupBoundary& boundary(int group_index) const {
    return boundaries_[group_index];
  }

  // Whether the *original* grammar's production k is visible in this view.
  // (base().IsActiveProduction indexes the virtual grammar's production
  // table, whose ids differ; labeling uses original ids.)
  bool IsActiveProduction(ProductionId k) const {
    return base_.view().expandable[grammar_->production(k).lhs];
  }

  // Group index owning (production, member position); -1 if ungrouped.
  int GroupAt(ProductionId k, int position) const;
  // Index of the group defined on production k; -1 if none.
  int GroupOfProduction(ProductionId k) const { return group_of_production_[k]; }

  // Port-graph overlay realizing λ'(F) for production k (nullptr if k has no
  // group). Pass to WorkflowPortGraph to compute the §5 view-label matrices.
  const PortGraphOverlay* OverlayFor(ProductionId k) const;

  // Port visibility (§5): a port of a grouped member is visible iff it is a
  // group boundary port.
  bool InputPortVisible(ProductionId k, int member, int port) const;
  bool OutputPortVisible(ProductionId k, int member, int port) const;

  // The §5 virtual specification: F_i appended to the module table, each
  // grouped production k = M -> W replaced by M -> W9 (group collapsed to
  // F_i) plus F_i -> W10 (the group's subworkflow). Held behind a pointer so
  // that CompiledView's reference into it survives moves of GroupedView.
  const Grammar& virtual_grammar() const { return *virtual_grammar_; }
  // Module id of group i's module F_i within virtual_grammar().
  ModuleId VirtualGroupModule(int group_index) const {
    return virtual_group_module_[group_index];
  }

 private:
  const Grammar* grammar_ = nullptr;
  CompiledView base_;
  std::vector<ModuleGroup> groups_;
  std::vector<GroupBoundary> boundaries_;
  std::vector<int> group_of_production_;  // per production, -1 if none
  std::vector<PortGraphOverlay> overlays_;  // per group
  std::shared_ptr<const Grammar> virtual_grammar_;
  std::vector<ModuleId> virtual_group_module_;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_USER_DEFINED_VIEW_H_
