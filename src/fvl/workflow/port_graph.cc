#include "fvl/workflow/port_graph.h"

#include "fvl/graph/reachability.h"
#include "fvl/util/check.h"

namespace fvl {

WorkflowPortGraph::WorkflowPortGraph(const Grammar& grammar,
                                     const SimpleWorkflow& w,
                                     const DependencyAssignment& deps,
                                     const PortGraphOverlay* overlay)
    : grammar_(&grammar), workflow_(&w) {
  const int n = w.num_members();
  input_base_.resize(n);
  output_base_.resize(n);
  int next = 0;
  for (int m = 0; m < n; ++m) {
    const Module& module = grammar.module(w.members[m]);
    input_base_[m] = next;
    next += module.num_inputs;
    output_base_[m] = next;
    next += module.num_outputs;
  }
  graph_ = Digraph(next);

  for (int m = 0; m < n; ++m) {
    if (overlay != nullptr && m < static_cast<int>(overlay->suppress_member.size()) &&
        overlay->suppress_member[m]) {
      continue;
    }
    ModuleId type = w.members[m];
    FVL_CHECK(deps.IsDefined(type));
    const BoolMatrix& matrix = deps.Get(type);
    const Module& module = grammar.module(type);
    FVL_CHECK(matrix.rows() == module.num_inputs &&
              matrix.cols() == module.num_outputs);
    for (int i = 0; i < matrix.rows(); ++i) {
      for (int o = 0; o < matrix.cols(); ++o) {
        if (matrix.Get(i, o)) {
          graph_.AddEdge(input_base_[m] + i, output_base_[m] + o);
        }
      }
    }
  }
  std::vector<bool> edge_suppressed(w.edges.size(), false);
  if (overlay != nullptr) {
    for (int index : overlay->suppressed_edges) {
      FVL_CHECK(index >= 0 && index < static_cast<int>(w.edges.size()));
      edge_suppressed[index] = true;
    }
  }
  for (size_t i = 0; i < w.edges.size(); ++i) {
    if (edge_suppressed[i]) continue;
    const DataEdge& e = w.edges[i];
    graph_.AddEdge(OutputNode(e.src), InputNode(e.dst));
  }
  if (overlay != nullptr) {
    for (const PortGraphOverlay::CrossDep& dep : overlay->extra_deps) {
      graph_.AddEdge(InputNode(dep.from_input), OutputNode(dep.to_output));
    }
  }
  closure_ = TransitiveClosure(graph_);
}

bool WorkflowPortGraph::Reaches(int from, int to) const {
  return closure_.Get(from, to);
}

bool WorkflowPortGraph::InputReachesInput(PortRef from, PortRef to) const {
  return Reaches(InputNode(from), InputNode(to));
}
bool WorkflowPortGraph::InputReachesOutput(PortRef from, PortRef to) const {
  return Reaches(InputNode(from), OutputNode(to));
}
bool WorkflowPortGraph::OutputReachesInput(PortRef from, PortRef to) const {
  return Reaches(OutputNode(from), InputNode(to));
}
bool WorkflowPortGraph::OutputReachesOutput(PortRef from, PortRef to) const {
  return Reaches(OutputNode(from), OutputNode(to));
}

BoolMatrix WorkflowPortGraph::InitialToFinal() const {
  const auto& inits = workflow_->initial_inputs;
  const auto& finals = workflow_->final_outputs;
  BoolMatrix result(static_cast<int>(inits.size()),
                    static_cast<int>(finals.size()));
  for (int x = 0; x < result.rows(); ++x) {
    for (int y = 0; y < result.cols(); ++y) {
      if (InputReachesOutput(inits[x], finals[y])) result.Set(x, y);
    }
  }
  return result;
}

BoolMatrix WorkflowPortGraph::InitialToMemberInputs(int member) const {
  const auto& inits = workflow_->initial_inputs;
  const Module& module = grammar_->module(workflow_->members[member]);
  BoolMatrix result(static_cast<int>(inits.size()), module.num_inputs);
  for (int x = 0; x < result.rows(); ++x) {
    for (int y = 0; y < result.cols(); ++y) {
      if (InputReachesInput(inits[x], {member, y})) result.Set(x, y);
    }
  }
  return result;
}

BoolMatrix WorkflowPortGraph::MemberOutputsToFinalReversed(int member) const {
  const auto& finals = workflow_->final_outputs;
  const Module& module = grammar_->module(workflow_->members[member]);
  BoolMatrix result(static_cast<int>(finals.size()), module.num_outputs);
  for (int x = 0; x < result.rows(); ++x) {
    for (int y = 0; y < result.cols(); ++y) {
      if (OutputReachesOutput({member, y}, finals[x])) result.Set(x, y);
    }
  }
  return result;
}

BoolMatrix WorkflowPortGraph::MemberOutputsToMemberInputs(int i, int j) const {
  const Module& from = grammar_->module(workflow_->members[i]);
  const Module& to = grammar_->module(workflow_->members[j]);
  BoolMatrix result(from.num_outputs, to.num_inputs);
  for (int x = 0; x < result.rows(); ++x) {
    for (int y = 0; y < result.cols(); ++y) {
      if (OutputReachesInput({i, x}, {j, y})) result.Set(x, y);
    }
  }
  return result;
}

}  // namespace fvl
