// Dependency assignments (Def. 6): per module, a boolean matrix from input
// ports (rows) to output ports (columns); entry (i, o) is true iff output o
// depends on input i.
//
// A *proper* assignment requires every input to contribute to at least one
// output and every output to depend on at least one input (every row and
// every column non-empty).

#ifndef FVL_WORKFLOW_DEPENDENCY_H_
#define FVL_WORKFLOW_DEPENDENCY_H_

#include <optional>
#include <string>
#include <vector>

#include "fvl/util/boolean_matrix.h"
#include "fvl/workflow/module.h"

namespace fvl {

class DependencyAssignment {
 public:
  DependencyAssignment() = default;
  explicit DependencyAssignment(int num_modules) : deps_(num_modules) {}

  int num_modules() const { return static_cast<int>(deps_.size()); }

  bool IsDefined(ModuleId m) const {
    return m >= 0 && m < num_modules() && deps_[m].has_value();
  }
  const BoolMatrix& Get(ModuleId m) const;
  void Set(ModuleId m, BoolMatrix deps);
  void Clear(ModuleId m);

  // Def. 6 validity check for one module.
  static std::optional<std::string> ValidateProper(const Module& module,
                                                   const BoolMatrix& deps);

  // Checks definedness + Def. 6 for all modules in `required`.
  std::optional<std::string> ValidateCoverage(
      const std::vector<Module>& modules,
      const std::vector<ModuleId>& required) const;

  // Structural equality (same defined set, same matrices) — lets views be
  // deduplicated by the service's view registry.
  bool operator==(const DependencyAssignment&) const = default;

 private:
  std::vector<std::optional<BoolMatrix>> deps_;
};

}  // namespace fvl

#endif  // FVL_WORKFLOW_DEPENDENCY_H_
