// The on-disk tier's serving and compaction costs: R run archives are
// compacted into one merged L1 file (service->CompactFiles), and the same
// batch-query workload is then answered three ways —
//   * heap        — the classic Deserialize() round trip: the archive bytes
//     are read into a string and every stream (arena included) copied into
//     a heap-owned store;
//   * mapped_cold — the first query pass immediately after
//     OpenMergedIndexFile: label decode pays the page faults into the
//     fresh mapping (the file was just written, so "cold" is
//     cold-*mapping*, not cold-disk — page cache is already warm on any
//     machine that just ran the compaction);
//   * mapped_warm — the second pass over the same mapping, the steady
//     state a long-lived archive server runs in.
//
// mapped_qps (the warm number) is the tracked serving metric: it should
// stay within noise of heap_qps, because after the faults are paid the
// only difference is reading arena bits through byte-wise loads instead of
// word-aligned ones. compact_ms is the tracked compaction metric.
// compact_peak_stores (internal::StoreCountProbe) is the memory story:
// one parsed input alive at a time however many archives fold in — the
// bound tests/disk_tier_test.cc asserts. Answers from all three paths are
// checked identical before any row is reported.

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "fvl/core/label_store.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/file.h"
#include "fvl/util/random.h"

namespace fvl::bench {
namespace {

volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "mmap_serve");
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // The §6.3 medium view, same setup as bench_merge_query.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 8;
  CompiledView generated = GenerateSafeView(workload, view_options);
  ViewHandle view = service->RegisterView(generated.view()).value();
  // Uncached serving: the comparison is heap decode vs mapped decode — a
  // warm reachability memo would answer repeats without touching either
  // arena and flatten exactly the difference under measurement.
  service->set_serving_cache_enabled(false);

  const int items_per_run = config.quick ? 1000 : 4000;
  const std::vector<int> run_counts =
      config.quick ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16};

  TablePrinter table({"runs", "total_items", "archive_kb", "compact_ms",
                      "compact_peak_stores", "heap_qps", "mapped_cold_qps",
                      "mapped_qps", "mapped_pct_of_heap"});
  for (int num_runs : run_counts) {
    // L0: one archive file per run.
    std::vector<std::string> l0_paths;
    for (int r = 0; r < num_runs; ++r) {
      RunGeneratorOptions run_options;
      run_options.target_items = items_per_run;
      run_options.seed = 100 * num_runs + r;
      auto session = service->GenerateLabeledRun(run_options);
      l0_paths.push_back("/tmp/fvl_bench_mmap_run" + std::to_string(r) +
                         ".fvlidx");
      FileHandle out = FileHandle::CreateTruncate(l0_paths.back()).value();
      FVL_CHECK(out.WriteAll(session->Snapshot().Serialize()).ok());
      FVL_CHECK(out.Close().ok());
    }

    // L1 compaction, with the store-count probe as the peak-RSS proxy.
    const std::string l1_path = "/tmp/fvl_bench_mmap_l1.fvlmrg";
    int compact_peak = 0;
    double compact_ms = TimeMs([&] {
      const int base = internal::StoreCountProbe::live();
      internal::StoreCountProbe::ResetPeak();
      MergedProvenanceIndex compacted =
          service->CompactFiles(l0_paths, l1_path).value();
      benchmark_sink = benchmark_sink + compacted.total_items();
      compact_peak = internal::StoreCountProbe::peak() - base;
    });

    // One fixed query pool over the merged flat-id space, reused by every
    // serving path.
    MergedProvenanceIndex heap = MergedProvenanceIndex::Deserialize(
        FileHandle::OpenRead(l1_path).value().ReadAll().value()).value();
    FVL_CHECK(!heap.store().arena_borrowed());
    Rng rng(13 * num_runs);
    std::vector<std::pair<int, int>> queries;
    const int num_queries = config.queries_per_point();
    queries.reserve(num_queries);
    for (int q = 0; q < num_queries; ++q) {
      queries.push_back({rng.NextInt(0, heap.total_items() - 1),
                         rng.NextInt(0, heap.total_items() - 1)});
    }

    std::vector<bool> heap_answers;
    double heap_ms = TimeMs([&] {
      heap_answers = service->DependsMany(view, heap, queries).value();
    });

    MergedProvenanceIndex mapped =
        service->OpenMergedIndexFile(l1_path).value();
    FVL_CHECK(mapped.store().arena_borrowed() ||
              mapped.store().total_items() == 0);
    std::vector<bool> cold_answers;
    double cold_ms = TimeMs([&] {
      cold_answers = service->DependsMany(view, mapped, queries).value();
    });
    std::vector<bool> warm_answers;
    double warm_ms = TimeMs([&] {
      warm_answers = service->DependsMany(view, mapped, queries).value();
    });
    FVL_CHECK(cold_answers == heap_answers);
    FVL_CHECK(warm_answers == heap_answers);
    int hits = 0;
    for (bool answer : heap_answers) hits += answer;
    benchmark_sink = benchmark_sink + hits;

    double archive_kb =
        static_cast<double>(FileHandle::OpenRead(l1_path)
                                .value()
                                .Size()
                                .value()) /
        1024.0;
    auto qps = [&](double ms) { return num_queries / (ms / 1000.0); };
    table.AddRow({std::to_string(num_runs),
                  std::to_string(heap.total_items()),
                  TablePrinter::Num(archive_kb, 1),
                  TablePrinter::Num(compact_ms, 2),
                  std::to_string(compact_peak),
                  TablePrinter::Num(qps(heap_ms), 0),
                  TablePrinter::Num(qps(cold_ms), 0),
                  TablePrinter::Num(qps(warm_ms), 0),
                  TablePrinter::Num(100.0 * heap_ms / warm_ms, 1)});
  }
  table.Print(
      "file-served archive queries: Deserialize round trip vs mmap-backed "
      "serving (cold mapping, then warm), plus CompactFiles cost (BioAID, "
      "medium grey-box view, query-efficient labels)");

  report.Add("mmap_serve", table);
  report.Write();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
