// Figure 23: query time of FVL (query-efficient), Matrix-Free FVL, and DRL
// over coarse-grained (black-box) views of three sizes. The paper reports
// FVL ≈ 4x slower than DRL, and Matrix-Free FVL ≈ DRL.

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/decoder.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

// Keeps timed loops observable without I/O.
volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = config.quick ? 2000 : 8000;
  run_options.seed = 23;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);

  TablePrinter table({"view", "FVL_ns", "MatrixFree_ns", "DRL_ns"});
  for (const NamedViewSize& view_size : PaperViewSizes()) {
    ViewGeneratorOptions options;
    options.num_expandable = view_size.num_expandable;
    options.deps = PerceivedDeps::kBlackBox;
    options.seed = view_size.num_expandable;
    CompiledView view = GenerateSafeView(workload, options);

    ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
    Decoder pi(&label);
    MatrixFreeDecoder matrix_free(&scheme.production_graph(), &label);
    DrlViewIndex drl_index(&workload.spec.grammar, &view);
    DrlRunLabeler drl = DrlLabelRun(labeled.run, drl_index);

    auto queries = GenerateVisibleQueries(
        labeled.run, labeled.labeler, label, config.queries_per_point(),
        17 * view_size.num_expandable);

    int sink = 0;
    Stopwatch watch;
    for (const auto& [d1, d2] : queries) {
      sink += pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2))
                  ? 1
                  : 0;
    }
    double fvl_ns = watch.ElapsedNanos() / queries.size();

    watch.Reset();
    for (const auto& [d1, d2] : queries) {
      sink += matrix_free.Depends(labeled.labeler.Label(d1),
                                  labeled.labeler.Label(d2))
                  ? 1
                  : 0;
    }
    double mf_ns = watch.ElapsedNanos() / queries.size();

    watch.Reset();
    for (const auto& [d1, d2] : queries) {
      sink += DrlDepends(drl_index, drl.Label(d1), drl.Label(d2)) ? 1 : 0;
    }
    double drl_ns = watch.ElapsedNanos() / queries.size();
    benchmark_sink = benchmark_sink + sink;

    table.AddRow({view_size.name, TablePrinter::Num(fvl_ns, 1),
                  TablePrinter::Num(mf_ns, 1), TablePrinter::Num(drl_ns, 1)});
  }
  table.Print(
      "Figure 23: query time (ns) over black-box views: FVL vs Matrix-Free "
      "FVL vs DRL");
  std::printf("expected shape: MatrixFree ≈ DRL < FVL (paper: FVL ~4x DRL)\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
