// Shared machinery for the figure/table benchmark binaries.
//
// Every binary regenerates one table or figure of the paper's §6 and prints
// the same rows/series (plus a CSV block). Pass "--quick" to shrink sample
// counts for smoke runs; the defaults aim at < ~60s per binary.

#ifndef FVL_BENCH_BENCH_UTIL_H_
#define FVL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "fvl/service/legacy_facade.h"
#include "fvl/util/check.h"
#include "fvl/util/stopwatch.h"
#include "fvl/util/table_printer.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"

namespace fvl::bench {

struct BenchConfig {
  bool quick = false;
  // Destination for machine-readable results ("--json <path>"); empty
  // disables JSON emission. CI archives these as BENCH_*.json artifacts to
  // track the perf trajectory across commits.
  std::string json_path;
  int runs_per_point() const { return quick ? 3 : 10; }
  int queries_per_point() const { return quick ? 20000 : 200000; }
  std::vector<int> run_sizes() const {
    if (quick) return {1000, 4000, 16000};
    return {1000, 2000, 4000, 8000, 16000, 32000};
  }
};

inline BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) config.quick = true;
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {  // fail fast, like an unwritable path would
        std::fprintf(stderr, "--json requires a destination path\n");
        std::exit(1);
      }
      config.json_path = argv[++i];
    }
  }
  return config;
}

// Machine-readable results sink: collects named tables and writes one JSON
// document — {"benchmark": ..., "quick": ..., "tables": [...]} — to
// config.json_path at Write(). Every Add/Write is a no-op when --json was
// not passed, so benches emit unconditionally. The destination is opened
// at construction: an unwritable path fails fast (stderr + exit 1)
// *before* the benchmark burns minutes of work, not after.
class JsonReport {
 public:
  JsonReport(const BenchConfig& config, std::string benchmark)
      : path_(config.json_path),
        quick_(config.quick),
        benchmark_(std::move(benchmark)) {
    if (path_.empty()) return;
    file_ = std::fopen(path_.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "cannot open --json destination %s for writing\n",
                   path_.c_str());
      std::exit(1);
    }
  }
  ~JsonReport() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void Add(const std::string& table_name, const TablePrinter& table) {
    if (file_ == nullptr) return;
    if (!tables_.empty()) tables_ += ",\n    ";
    tables_ += table.ToJson(table_name);
  }

  // Exits nonzero if the artifact can't be written in full: a CI step
  // that consumes BENCH_*.json must fail at the producing bench, not at a
  // downstream parse of a truncated file (the open in the constructor
  // catches bad paths; this catches ENOSPC-style failures at flush).
  void Write() {
    if (file_ == nullptr) return;
    int printed = std::fprintf(file_,
                               "{\n  \"benchmark\": \"%s\",\n  \"quick\": %s,\n"
                               "  \"tables\": [\n    %s\n  ]\n}\n",
                               benchmark_.c_str(), quick_ ? "true" : "false",
                               tables_.c_str());
    bool flushed = std::fflush(file_) == 0;
    bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    if (printed < 0 || !flushed || !closed) {
      std::fprintf(stderr, "cannot write --json artifact %s\n", path_.c_str());
      std::exit(1);
    }
    std::printf("json results written to %s\n", path_.c_str());
  }

 private:
  std::string path_;
  bool quick_;
  std::string benchmark_;
  std::string tables_;
  std::FILE* file_ = nullptr;
};

// Average and maximum encoded data-label length over a labeled run.
struct LabelLengthStats {
  double avg_bits = 0;
  double max_bits = 0;
};

inline LabelLengthStats FvlLabelLengths(const FvlScheme::LabeledRun& labeled) {
  LabelLengthStats stats;
  int64_t total = 0;
  int64_t max_bits = 0;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    int64_t bits = labeled.labeler.LabelBits(item);
    total += bits;
    max_bits = std::max(max_bits, bits);
  }
  stats.avg_bits = static_cast<double>(total) / labeled.run.num_items();
  stats.max_bits = static_cast<double>(max_bits);
  return stats;
}

// Times `body` and returns elapsed milliseconds.
template <typename Body>
double TimeMs(Body&& body) {
  Stopwatch watch;
  body();
  return watch.ElapsedMillis();
}

// The paper's three view sizes for BioAID (§6.3): small/medium/large = 2, 8,
// 16 expandable composite modules.
struct NamedViewSize {
  const char* name;
  int num_expandable;
};
inline std::vector<NamedViewSize> PaperViewSizes() {
  return {{"small", 2}, {"medium", 8}, {"large", 16}};
}

}  // namespace fvl::bench

#endif  // FVL_BENCH_BENCH_UTIL_H_
