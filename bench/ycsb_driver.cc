// Multi-client workload driver for the framed-TCP provenance server:
// YCSB-style operation mixes replayed by N threaded clients over loopback,
// with uniform and zipfian key choice, per-op latency percentiles, and
// aggregate throughput against the in-process ceiling.
//
// Mixes (per-op probabilities over the frozen medium-view BioAID index):
//   read-heavy — 100% point dependency queries, pipelined in windows of
//     512: the workload the server's cross-connection coalescing batcher
//     exists for. Its throughput is compared against locked_qps — the
//     one-at-a-time in-process service path measured in this process
//     (the same quantity bench_service_throughput reports), i.e. what one
//     caller gets WITHOUT the network. net_pct_of_locked >= 50 at 8
//     threads is the acceptance bar; mean_batch > 1 shows the batcher,
//     not raw socket speed, is doing the lifting.
//   scan-heavy — 90% point queries, 10% whole-index visibility sweeps
//     (each sweep decodes every item: a table-scan analogue).
//   merge-mix — point queries with a server-side streamed merge-runs +
//     query-across-runs transaction every 1000 ops: the archival path
//     exercised concurrently with the hot query path.
//
// Key choice: uniform vs zipfian(0.99) over the item space. Zipfian skew
// concentrates queries on hot items, which the batched decode pass
// exploits (each distinct item decodes once per batch) — expect zipfian
// qps >= uniform qps at equal thread counts. The hit_rate column is the
// snapshot serving cache's reachability-memo hit fraction over the cell
// (from the server's kStats counters): near 0 for uniform keys, high for
// zipfian, where repeated hot pairs skip decode + predicate entirely.
//
// Latency: every point query's latency is measured from its window's
// flush to its answer's arrival (closed-loop pipelined clients — later
// answers in a window honestly carry the queueing delay). Per-thread
// log-bucketed histograms (~3% resolution) are merged after the run.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fvl/net/client.h"
#include "fvl/net/server.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/file.h"
#include "fvl/util/histogram.h"
#include "fvl/workload/key_generator.h"

namespace fvl::bench {
namespace {

using net::MergeInfo;
using net::ProvenanceClient;
using net::ProvenanceServer;
using net::ServerStats;
using net::SnapshotInfo;

constexpr int kWindow = 512;  // pipelined point queries in flight per client

volatile long benchmark_sink = 0;

struct Mix {
  const char* name;
  double sweep_every = 0;   // sweeps per op (0 = never)
  double merge_every = 0;   // merge transactions per op (0 = never)
  bool archive = false;     // point queries hit the file-served archive id
};

struct WorkerResult {
  int64_t point_ops = 0;
  int64_t sweep_ops = 0;
  int64_t merge_ops = 0;
  LatencyHistogram point_latency;  // microseconds
  bool failed = false;
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One client thread: a closed loop of pipelined point-query windows with
// the mix's scan/merge ops interleaved at their configured rates.
WorkerResult RunWorker(int port, uint64_t view_id, uint64_t index_id,
                       const std::vector<uint64_t>& run_index_ids,
                       const std::vector<int>& run_sizes,
                       const KeyGenerator& keys, const Mix& mix,
                       int64_t target_ops, uint64_t seed) {
  WorkerResult result;
  auto fail = [&result](const Status& status) {
    std::fprintf(stderr, "ycsb worker failed: %s\n",
                 std::string(status.message()).c_str());
    result.failed = true;
    return result;
  };
  Result<ProvenanceClient> client = ProvenanceClient::Connect(port);
  if (!client.ok()) return fail(client.status());
  Rng rng(seed);
  constexpr ViewLabelMode kMode = ViewLabelMode::kQueryEfficient;
  double sweep_debt = 0, merge_debt = 0;
  while (result.point_ops < target_ops) {
    int64_t window = std::min<int64_t>(kWindow, target_ops - result.point_ops);
    for (int64_t i = 0; i < window; ++i) {
      client->QueueDepends(view_id, index_id, kMode,
                           static_cast<uint64_t>(keys.Next(rng)),
                           static_cast<uint64_t>(keys.Next(rng)));
    }
    int64_t flushed_at = NowMicros();
    Status flushed = client->Flush();
    if (!flushed.ok()) return fail(flushed);
    int64_t hits = 0;
    for (int64_t i = 0; i < window; ++i) {
      Result<bool> answer = client->NextDependsAnswer();
      if (!answer.ok()) return fail(answer.status());
      hits += *answer;
      result.point_latency.Record(NowMicros() - flushed_at);
    }
    benchmark_sink = benchmark_sink + hits;
    result.point_ops += window;

    sweep_debt += window * mix.sweep_every;
    while (sweep_debt >= 1.0) {
      sweep_debt -= 1.0;
      Result<std::vector<bool>> visible =
          client->VisibilitySweep(view_id, index_id, kMode);
      if (!visible.ok()) return fail(visible.status());
      benchmark_sink = benchmark_sink + static_cast<long>(visible->size());
      ++result.sweep_ops;
    }
    merge_debt += window * mix.merge_every;
    while (merge_debt >= 1.0) {
      merge_debt -= 1.0;
      Result<MergeInfo> merged = client->MergeRuns(run_index_ids);
      if (!merged.ok()) return fail(merged.status());
      std::vector<std::pair<RunItem, RunItem>> cross = {
          {{0, static_cast<int>(keys.Next(rng)) % run_sizes[0]},
           {1, static_cast<int>(keys.Next(rng)) % run_sizes[1]}}};
      Result<std::vector<bool>> answers = client->QueryAcrossRuns(
          view_id, merged->merged_id, kMode, cross);
      if (!answers.ok()) return fail(answers.status());
      ++result.merge_ops;
    }
  }
  return result;
}

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "ycsb");

  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // The §6.3 medium grey-box view — the same setup as
  // bench_service_throughput, so locked_qps here is the same ceiling that
  // bench reports.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 8;
  CompiledView generated = GenerateSafeView(workload, view_options);
  View view = generated.view();
  ViewHandle direct_view = service->RegisterView(view).value();

  auto server = ProvenanceServer::Start(service).value();
  ProvenanceClient setup = ProvenanceClient::Connect(server->port()).value();
  uint64_t view_id = setup.RegisterView(view).value();

  // Server-side state: one query index plus two smaller runs for the
  // merge-mix transactions. Built by replaying deterministic generated
  // derivations over the wire.
  const int query_items = config.quick ? 4000 : 16000;
  auto replay = [&](int target_items, int seed) {
    auto reference = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = target_items, .seed = static_cast<uint64_t>(seed)});
    uint64_t session_id = setup.BeginRun().value();
    for (int s = 0; s < reference->run().num_steps(); ++s) {
      const DerivationStep& step = reference->run().step(s);
      FVL_CHECK(setup.Apply(session_id, step.instance, step.production).ok());
    }
    return setup.Snapshot(session_id).value();
  };
  SnapshotInfo query_snapshot = replay(query_items, 2012);
  SnapshotInfo merge_run_a = replay(query_items / 8, 31);
  SnapshotInfo merge_run_b = replay(query_items / 8, 32);

  // On-disk tier: the same frozen index written as an archive file and
  // re-opened by path — the cold_archive mix serves point queries straight
  // off the mapping instead of the heap snapshot. The two small runs are
  // also archived and compacted over the wire once, so the LSM path is
  // exercised end-to-end under the same process.
  const std::string archive_dir = "/tmp";
  auto archive_file = [&](const std::string& name, std::string_view blob) {
    std::string path = archive_dir + "/fvl_ycsb_" +
                       std::to_string(server->port()) + "_" + name;
    FileHandle out = FileHandle::CreateTruncate(path).value();
    FVL_CHECK(out.WriteAll(blob).ok());
    FVL_CHECK(out.Close().ok());
    return path;
  };
  auto run_blob = [&](int target_items, int seed) {
    auto reference = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = target_items, .seed = static_cast<uint64_t>(seed)});
    return reference->Snapshot().Serialize();
  };
  std::string archive_path =
      archive_file("query.fvlidx", run_blob(query_items, 2012));
  net::OpenInfo archive = setup.OpenIndexFile(archive_path).value();
  FVL_CHECK(archive.num_items == query_snapshot.num_items);
  std::vector<std::string> compact_inputs = {
      archive_file("run_a.fvlidx", run_blob(query_items / 8, 31)),
      archive_file("run_b.fvlidx", run_blob(query_items / 8, 32))};
  MergeInfo compacted =
      setup
          .CompactFiles(compact_inputs,
                        archive_dir + "/fvl_ycsb_" +
                            std::to_string(server->port()) + "_l1.fvlmrg")
          .value();
  FVL_CHECK(compacted.num_runs == 2);
  std::vector<uint64_t> run_index_ids = {merge_run_a.index_id,
                                         merge_run_b.index_id};
  std::vector<int> run_sizes = {merge_run_a.num_items, merge_run_b.num_items};
  const int num_items = query_snapshot.num_items;

  // The ceiling: one-at-a-time point queries through the locked service
  // registry, in-process — no sockets, no framing, no batching.
  ProvenanceIndex direct_index = [&] {
    auto reference = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = query_items, .seed = 2012});
    return reference->Snapshot();
  }();
  FVL_CHECK(direct_index.num_items() == num_items);
  double locked_qps;
  {
    Rng rng(7);
    const int probes = config.quick ? 100000 : 400000;
    int hits = 0;
    double ms = TimeMs([&] {
      for (int q = 0; q < probes; ++q) {
        int d1 = rng.NextInt(0, num_items - 1);
        int d2 = rng.NextInt(0, num_items - 1);
        hits += service
                    ->Depends(direct_view, direct_index.Label(d1),
                              direct_index.Label(d2))
                    .value();
      }
    });
    benchmark_sink = benchmark_sink + hits;
    locked_qps = probes / (ms / 1000.0);
  }

  const Mix mixes[] = {
      {"read_heavy", 0, 0},
      {"scan_heavy", /*sweep_every=*/1.0 / 640, 0},
      {"merge_mix", /*sweep_every=*/0, /*merge_every=*/1.0 / 1000},
      // Same op stream as read_heavy but against the file-served archive:
      // the qps delta against read_heavy rows is the cost of serving
      // labels off the mapping instead of the heap snapshot.
      {"cold_archive", 0, 0, /*archive=*/true},
  };
  std::vector<int> thread_points =
      config.quick ? std::vector<int>{2, 8} : std::vector<int>{1, 4, 8};
  const int64_t ops_per_thread = config.quick ? 20000 : 100000;

  TablePrinter table({"mix", "dist", "threads", "point_ops", "qps",
                      "p50_us", "p95_us", "p99_us", "mean_batch",
                      "hit_rate", "locked_qps", "net_pct_of_locked"});
  for (const Mix& mix : mixes) {
    for (KeyDistribution dist :
         {KeyDistribution::kUniform, KeyDistribution::kZipfian}) {
      KeyGenerator keys(dist, num_items);
      for (int threads : thread_points) {
        ServerStats before = server->stats();
        std::vector<WorkerResult> results(threads);
        Stopwatch watch;
        {
          std::vector<std::thread> pool;
          for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
              results[t] = RunWorker(
                  server->port(), view_id,
                  mix.archive ? archive.index_id : query_snapshot.index_id,
                  run_index_ids, run_sizes, keys, mix, ops_per_thread,
                  /*seed=*/1000 * (t + 1) + threads);
            });
          }
          for (std::thread& worker : pool) worker.join();
        }
        double elapsed = watch.ElapsedSeconds();
        ServerStats after = server->stats();

        LatencyHistogram latency;
        int64_t point_ops = 0;
        for (const WorkerResult& result : results) {
          FVL_CHECK(!result.failed);
          latency.Merge(result.point_latency);
          point_ops += result.point_ops;
        }
        uint64_t queries = after.point_queries - before.point_queries;
        uint64_t batches = after.point_batches - before.point_batches;
        double mean_batch =
            batches == 0 ? 0.0 : static_cast<double>(queries) / batches;
        double qps = point_ops / elapsed;
        // Reachability-memo hit rate over this cell's queries. Uniform rows
        // should stay near 0; zipfian rows are where the skew-aware cache
        // earns its keep. Cache counters live on snapshots, so a merge op
        // that replaces a snapshot can shrink the aggregate mid-cell; fall
        // back to the absolute count rather than underflowing.
        uint64_t reach_hits = after.reach_hits >= before.reach_hits
                                  ? after.reach_hits - before.reach_hits
                                  : after.reach_hits;
        uint64_t reach_misses = after.reach_misses >= before.reach_misses
                                    ? after.reach_misses - before.reach_misses
                                    : after.reach_misses;
        uint64_t reach_total = reach_hits + reach_misses;
        double hit_rate =
            reach_total == 0
                ? 0.0
                : static_cast<double>(reach_hits) / reach_total;
        table.AddRow({mix.name, ToString(dist), std::to_string(threads),
                      std::to_string(point_ops), TablePrinter::Num(qps, 0),
                      std::to_string(latency.Percentile(0.50)),
                      std::to_string(latency.Percentile(0.95)),
                      std::to_string(latency.Percentile(0.99)),
                      TablePrinter::Num(mean_batch, 2),
                      TablePrinter::Num(hit_rate, 3),
                      TablePrinter::Num(locked_qps, 0),
                      TablePrinter::Num(100.0 * qps / locked_qps, 1)});
      }
    }
  }
  table.Print(
      "framed-TCP server under YCSB-style multi-client load: pipelined "
      "point queries (window 512) with scan/merge ops mixed in, vs the "
      "in-process one-at-a-time locked ceiling (BioAID, medium grey-box "
      "view, query-efficient labels)");

  report.Add("ycsb", table);
  report.Write();

  server->Stop();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
