// Ablation study for the label-encoding design choices called out in
// docs/DESIGN.md §7:
//  (a) common-prefix factoring (§4.2.2: "the size of φr(d) can be reduced
//      almost by half by factoring out the common prefix") — labels encoded
//      with and without sharing the producer/consumer path prefix;
//  (b) Elias-gamma vs fixed-width iteration indices — gamma costs
//      2·log2(i)+1 bits per recursion hop but adapts to shallow runs,
//      whereas a fixed width must be provisioned for the worst case;
//  (c) the provenance-index offset table overhead vs the raw arena.

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/index.h"

namespace fvl::bench {
namespace {

// Label bits without prefix factoring: each side encoded in full.
int64_t UnfactoredBits(const LabelCodec& codec, const DataLabel& label) {
  int64_t bits = 2;
  if (label.producer.has_value()) {
    DataLabel producer_only{label.producer, std::nullopt};
    bits += codec.EncodedBits(producer_only) - 2;
  }
  if (label.consumer.has_value()) {
    DataLabel consumer_only{std::nullopt, label.consumer};
    bits += codec.EncodedBits(consumer_only) - 2;
  }
  return bits;
}

// Label bits with fixed-width iteration fields sized for the largest
// iteration index occurring in the run.
int64_t FixedWidthIterationBits(const LabelCodec& codec,
                                const DataLabel& label, int iteration_bits) {
  int64_t bits = codec.EncodedBits(label);
  auto fix_side = [&](const std::optional<PortLabel>& side) {
    if (!side.has_value()) return;
    for (const EdgeLabel& edge : side->path) {
      if (edge.kind == EdgeLabel::Kind::kRecursion) {
        bits -= GammaLength(static_cast<uint64_t>(edge.iteration));
        bits += iteration_bits;
      }
    }
  };
  // The prefix is shared; approximate by fixing both sides then restoring
  // the double-counted prefix (prefix recursion hops counted once).
  fix_side(label.producer);
  fix_side(label.consumer);
  if (label.producer.has_value() && label.consumer.has_value()) {
    const auto& a = label.producer->path;
    const auto& b = label.consumer->path;
    for (size_t i = 0; i < a.size() && i < b.size() && a[i] == b[i]; ++i) {
      if (a[i].kind == EdgeLabel::Kind::kRecursion) {
        bits += GammaLength(static_cast<uint64_t>(a[i].iteration));
        bits -= iteration_bits;
      }
    }
  }
  return bits;
}

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  TablePrinter table({"run_size", "factored_avg", "unfactored_avg",
                      "fixed_width_avg", "index_bits_per_item"});
  for (int size : config.run_sizes()) {
    RunGeneratorOptions options;
    options.target_items = size;
    options.seed = size;
    FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
    const LabelCodec& codec = labeled.labeler.codec();

    // Provision the fixed iteration width for this run's deepest recursion.
    int max_iteration = 1;
    for (int item = 0; item < labeled.run.num_items(); ++item) {
      const DataLabel& label = labeled.labeler.Label(item);
      for (const auto& side : {label.producer, label.consumer}) {
        if (!side.has_value()) continue;
        for (const EdgeLabel& edge : side->path) {
          if (edge.kind == EdgeLabel::Kind::kRecursion) {
            max_iteration = std::max(max_iteration, edge.iteration);
          }
        }
      }
    }
    int iteration_bits = BitWidthFor(max_iteration + 1);

    int64_t factored = 0, unfactored = 0, fixed = 0;
    for (int item = 0; item < labeled.run.num_items(); ++item) {
      const DataLabel& label = labeled.labeler.Label(item);
      factored += codec.EncodedBits(label);
      unfactored += UnfactoredBits(codec, label);
      fixed += FixedWidthIterationBits(codec, label, iteration_bits);
    }
    ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
        scheme.production_graph(), labeled.labeler);
    double n = labeled.run.num_items();
    table.AddRow({std::to_string(size), TablePrinter::Num(factored / n, 1),
                  TablePrinter::Num(unfactored / n, 1),
                  TablePrinter::Num(fixed / n, 1),
                  TablePrinter::Num(index.SizeBits() / n, 1)});
  }
  table.Print(
      "Ablation: label encoding choices (avg bits/item, BioAID runs)");
  std::printf(
      "expected: unfactored ≈ 1.5-2x factored (§4.2.2); fixed-width within a "
      "few bits of gamma at scale but cannot adapt to shallow runs; index "
      "adds only the offset table over raw labels\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
