// Figure 21: total data-label length assigned to one data item versus the
// number of views (1..10), FVL vs DRL, on 8K-item BioAID runs with
// medium-size black-box views (§6.4). FVL is view-adaptive: one label per
// item regardless of the number of views (flat line); DRL keeps one label
// per item per view (linear growth).

#include <cstdio>

#include "bench_util.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = config.quick ? 2000 : 8000;
  run_options.seed = 21;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
  double fvl_bits = FvlLabelLengths(labeled).avg_bits;

  // Ten medium-size black-box views.
  std::vector<DrlViewIndex> indices;
  std::vector<CompiledView> views;
  views.reserve(10);
  for (int v = 0; v < 10; ++v) {
    ViewGeneratorOptions options;
    options.num_expandable = 8;
    options.deps = PerceivedDeps::kBlackBox;
    options.seed = 100 + v;
    views.push_back(GenerateSafeView(workload, options));
  }
  for (int v = 0; v < 10; ++v) {
    indices.emplace_back(&workload.spec.grammar, &views[v]);
  }

  TablePrinter table({"num_views", "FVL_bits", "DRL_bits"});
  double drl_cumulative = 0;
  for (int v = 1; v <= 10; ++v) {
    DrlRunLabeler drl = DrlLabelRun(labeled.run, indices[v - 1]);
    int64_t total = 0, count = 0;
    for (int item = 0; item < labeled.run.num_items(); ++item) {
      if (!drl.HasLabel(item)) continue;
      total += drl.LabelBits(item);
      ++count;
    }
    drl_cumulative += static_cast<double>(total) / count;
    table.AddRow({std::to_string(v), TablePrinter::Num(fvl_bits, 1),
                  TablePrinter::Num(drl_cumulative, 1)});
  }
  table.Print(
      "Figure 21: total data label bits per item vs number of views "
      "(8K runs, medium black-box views)");
  std::printf("expected shape: FVL flat, DRL linear in the view count\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
