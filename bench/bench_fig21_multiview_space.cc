// Figure 21: total data-label length assigned to one data item versus the
// number of views (1..10), FVL vs DRL, on 8K-item BioAID runs with
// medium-size black-box views (§6.4). FVL is view-adaptive: one label per
// item regardless of the number of views (flat line); DRL keeps one label
// per item per view (linear growth).
//
// A second table reports the serialized footprint of the one FVL index
// that serves every view: bytes_per_label under the block-compressed span
// tail (FVLIDX3), the v1 flat-offset cost of the same labels, the
// resulting space_saving_pct, and the total index_bytes of the blob.

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/index.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "fig21_multiview_space");
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = config.quick ? 2000 : 8000;
  run_options.seed = 21;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
  double fvl_bits = FvlLabelLengths(labeled).avg_bits;

  // Ten medium-size black-box views.
  std::vector<DrlViewIndex> indices;
  std::vector<CompiledView> views;
  views.reserve(10);
  for (int v = 0; v < 10; ++v) {
    ViewGeneratorOptions options;
    options.num_expandable = 8;
    options.deps = PerceivedDeps::kBlackBox;
    options.seed = 100 + v;
    views.push_back(GenerateSafeView(workload, options));
  }
  for (int v = 0; v < 10; ++v) {
    indices.emplace_back(&workload.spec.grammar, &views[v]);
  }

  TablePrinter table({"num_views", "fvl_bits", "drl_bits"});
  double drl_cumulative = 0;
  for (int v = 1; v <= 10; ++v) {
    DrlRunLabeler drl = DrlLabelRun(labeled.run, indices[v - 1]);
    int64_t total = 0, count = 0;
    for (int item = 0; item < labeled.run.num_items(); ++item) {
      if (!drl.HasLabel(item)) continue;
      total += drl.LabelBits(item);
      ++count;
    }
    drl_cumulative += static_cast<double>(total) / count;
    table.AddRow({std::to_string(v), TablePrinter::Num(fvl_bits, 1),
                  TablePrinter::Num(drl_cumulative, 1)});
  }
  table.Print(
      "Figure 21: total data label bits per item vs number of views "
      "(8K runs, medium black-box views)");
  std::printf("expected shape: FVL flat, DRL linear in the view count\n");

  // The single view-adaptive index behind the flat FVL line, frozen and
  // serialized: its per-item byte cost is what every additional view
  // amortizes against.
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme.production_graph(), labeled.labeler);
  const double items = index.num_items();
  const double v2_bytes =
      static_cast<double>(index.SizeBits()) / 8.0 / items;
  const int64_t arena_bits = index.store().arena_bits();
  const double v1_bytes =
      static_cast<double>(arena_bits + static_cast<int64_t>(items) *
                                           BitWidthFor(arena_bits + 1)) /
      8.0 / items;
  TablePrinter space_table({"run_size", "bytes_per_label",
                            "v1_bytes_per_label", "space_saving_pct",
                            "index_bytes"});
  space_table.AddRow(
      {std::to_string(index.num_items()), TablePrinter::Num(v2_bytes, 2),
       TablePrinter::Num(v1_bytes, 2),
       TablePrinter::Num(100.0 * (1.0 - v2_bytes / v1_bytes), 1),
       TablePrinter::Num(static_cast<double>(index.Serialize().size()), 0)});
  space_table.Print(
      "serialized FVL index footprint (one index serves all views)");

  report.Add("multiview_space", table);
  report.Add("index_space", space_table);
  report.Write();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
