// Figure 17: average and maximum data-label length (bits) versus run size
// (1K..32K data items) for FVL and the DRL baseline on the BioAID workload.
// Expected shape: all four curves grow logarithmically (near-parallel to
// log n), with DRL a small constant above FVL.
//
// Alongside the paper's per-label curves, each row reports the space cost
// of the frozen FVL index that serves those labels:
//   * bytes_per_label — serialized index bytes per item under the current
//     block-compressed span tail (FVLIDX3);
//   * v1_bytes_per_label — what the same labels cost under the v1 flat
//     fixed-width offset table (arena + num_items offsets at
//     BitWidthFor(arena_bits + 1)), computed from the same snapshot;
//   * space_saving_pct — the v2-over-v1 reduction, the number the compact
//     label store optimization is gated on;
//   * index_bytes — the full serialized blob size (header included);
//   * prefix_dupe_ratio — the fraction of encoded label bits shared with
//     the previous item's label as a bitwise prefix. Stats only for now:
//     it upper-bounds what a prefix-dictionary coder over the arena could
//     reclaim, so the column is the baseline to judge that future
//     optimization against (consecutive items come from nearby derivation
//     steps, whose producer paths share long prefixes by construction).

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/index.h"
#include "fvl/drl/drl_scheme.h"
#include "fvl/workload/synthetic.h"

namespace fvl::bench {
namespace {

// Fraction of encoded label bits shared with the previous item's encoding
// as a bitwise prefix, over one labeled run (see the header comment).
double PrefixDupeRatio(const FvlScheme::LabeledRun& labeled,
                       const LabelCodec& codec) {
  auto bit = [](const BitWriter& w, int64_t i) {
    return (w.words()[i / 64] >> (i % 64)) & 1;
  };
  int64_t shared = 0, total = 0;
  BitWriter prev;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    BitWriter cur = codec.Encode(labeled.labeler.Label(item));
    const int64_t overlap = std::min(prev.size_bits(), cur.size_bits());
    for (int64_t i = 0; i < overlap; ++i) {
      if (bit(prev, i) != bit(cur, i)) break;
      ++shared;
    }
    total += cur.size_bits();
    prev = std::move(cur);
  }
  return total == 0 ? 0.0 : static_cast<double>(shared) / total;
}

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "fig17_label_length");
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // DRL labels the default view of the run.
  View default_view = MakeDefaultView(workload.spec);
  auto compiled =
      *CompiledView::Compile(workload.spec.grammar, default_view);
  DrlViewIndex drl_index(&workload.spec.grammar, &compiled);

  TablePrinter table({"run_size", "fvl_avg_bits", "fvl_max_bits",
                      "drl_avg_bits", "drl_max_bits", "bytes_per_label",
                      "v1_bytes_per_label", "space_saving_pct",
                      "index_bytes", "prefix_dupe_ratio"});
  for (int size : config.run_sizes()) {
    double fvl_avg = 0, fvl_max = 0, drl_avg = 0, drl_max = 0;
    double v2_bytes = 0, v1_bytes = 0, blob_bytes = 0, prefix_dupe = 0;
    for (int sample = 0; sample < config.runs_per_point(); ++sample) {
      RunGeneratorOptions options;
      options.target_items = size;
      options.seed = 1000 * sample + size;
      FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
      LabelLengthStats fvl = FvlLabelLengths(labeled);
      fvl_avg += fvl.avg_bits;
      fvl_max = std::max(fvl_max, fvl.max_bits);

      // Freeze the labeled run and measure the serving artifact: v2 is the
      // store's exact serialized span cost, v1 is the flat-offset cost the
      // same arena paid before the compressed tail.
      ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
          scheme.production_graph(), labeled.labeler);
      const double items = index.num_items();
      v2_bytes += static_cast<double>(index.SizeBits()) / 8.0 / items;
      const int64_t arena_bits = index.store().arena_bits();
      v1_bytes += static_cast<double>(
                      arena_bits +
                      static_cast<int64_t>(items) *
                          BitWidthFor(arena_bits + 1)) /
                  8.0 / items;
      blob_bytes += static_cast<double>(index.Serialize().size());
      prefix_dupe += PrefixDupeRatio(labeled, index.store().codec());

      DrlRunLabeler drl = DrlLabelRun(labeled.run, drl_index);
      int64_t total = 0, max_bits = 0, count = 0;
      for (int item = 0; item < labeled.run.num_items(); ++item) {
        if (!drl.HasLabel(item)) continue;
        int64_t bits = drl.LabelBits(item);
        total += bits;
        max_bits = std::max(max_bits, bits);
        ++count;
      }
      drl_avg += static_cast<double>(total) / count;
      drl_max = std::max(drl_max, static_cast<double>(max_bits));
    }
    fvl_avg /= config.runs_per_point();
    drl_avg /= config.runs_per_point();
    v2_bytes /= config.runs_per_point();
    v1_bytes /= config.runs_per_point();
    blob_bytes /= config.runs_per_point();
    prefix_dupe /= config.runs_per_point();
    table.AddRow({std::to_string(size), TablePrinter::Num(fvl_avg, 1),
                  TablePrinter::Num(fvl_max, 0), TablePrinter::Num(drl_avg, 1),
                  TablePrinter::Num(drl_max, 0),
                  TablePrinter::Num(v2_bytes, 2),
                  TablePrinter::Num(v1_bytes, 2),
                  TablePrinter::Num(100.0 * (1.0 - v2_bytes / v1_bytes), 1),
                  TablePrinter::Num(blob_bytes, 0),
                  TablePrinter::Num(prefix_dupe, 3)});
  }
  table.Print("Figure 17: data label length (bits) vs run size, BioAID");
  std::printf(
      "expected shape: logarithmic growth (≈ +const per size doubling), "
      "DRL above FVL by a small constant; space_saving_pct is the "
      "compressed-tail (FVLIDX3) reduction over the v1 flat offset table\n");

  // Compact-label regime (Thm. 6 sweet spot): a small strictly
  // linear-recursive synthetic spec whose O(log n) labels are short enough
  // that the v1 fixed-width offset rivals the label content — the regime
  // the compressed span tail is sized for. Same space columns as above,
  // label curves only for FVL (DRL restates Figure 17's comparison).
  SyntheticOptions compact_options;
  compact_options.workflow_size = 40;
  compact_options.module_degree = 2;
  compact_options.nesting_depth = 1;
  Workload compact = MakeSynthetic(compact_options);
  FvlScheme compact_scheme = FvlScheme::Create(&compact.spec).value();
  TablePrinter compact_table({"run_size", "fvl_avg_bits", "fvl_max_bits",
                              "bytes_per_label", "v1_bytes_per_label",
                              "space_saving_pct", "index_bytes"});
  for (int size : config.run_sizes()) {
    double fvl_avg = 0, fvl_max = 0;
    double v2_bytes = 0, v1_bytes = 0, blob_bytes = 0;
    for (int sample = 0; sample < config.runs_per_point(); ++sample) {
      RunGeneratorOptions options;
      options.target_items = size;
      options.seed = 1000 * sample + size;
      FvlScheme::LabeledRun labeled =
          compact_scheme.GenerateLabeledRun(options);
      LabelLengthStats fvl = FvlLabelLengths(labeled);
      fvl_avg += fvl.avg_bits;
      fvl_max = std::max(fvl_max, fvl.max_bits);
      ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
          compact_scheme.production_graph(), labeled.labeler);
      const double items = index.num_items();
      v2_bytes += static_cast<double>(index.SizeBits()) / 8.0 / items;
      const int64_t arena_bits = index.store().arena_bits();
      v1_bytes += static_cast<double>(
                      arena_bits +
                      static_cast<int64_t>(items) *
                          BitWidthFor(arena_bits + 1)) /
                  8.0 / items;
      blob_bytes += static_cast<double>(index.Serialize().size());
    }
    fvl_avg /= config.runs_per_point();
    v2_bytes /= config.runs_per_point();
    v1_bytes /= config.runs_per_point();
    blob_bytes /= config.runs_per_point();
    compact_table.AddRow(
        {std::to_string(size), TablePrinter::Num(fvl_avg, 1),
         TablePrinter::Num(fvl_max, 0), TablePrinter::Num(v2_bytes, 2),
         TablePrinter::Num(v1_bytes, 2),
         TablePrinter::Num(100.0 * (1.0 - v2_bytes / v1_bytes), 1),
         TablePrinter::Num(blob_bytes, 0)});
  }
  compact_table.Print(
      "compact-label regime: flat linear-recursive synthetic spec "
      "(workflow 40, degree 2, nesting 1)");

  report.Add("label_length", table);
  report.Add("compact_label_length", compact_table);
  report.Write();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
