// Figure 17: average and maximum data-label length (bits) versus run size
// (1K..32K data items) for FVL and the DRL baseline on the BioAID workload.
// Expected shape: all four curves grow logarithmically (near-parallel to
// log n), with DRL a small constant above FVL.

#include <cstdio>

#include "bench_util.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // DRL labels the default view of the run.
  View default_view = MakeDefaultView(workload.spec);
  auto compiled =
      *CompiledView::Compile(workload.spec.grammar, default_view);
  DrlViewIndex drl_index(&workload.spec.grammar, &compiled);

  TablePrinter table({"run_size", "FVL-avg", "FVL-max", "DRL-avg", "DRL-max"});
  for (int size : config.run_sizes()) {
    double fvl_avg = 0, fvl_max = 0, drl_avg = 0, drl_max = 0;
    for (int sample = 0; sample < config.runs_per_point(); ++sample) {
      RunGeneratorOptions options;
      options.target_items = size;
      options.seed = 1000 * sample + size;
      FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
      LabelLengthStats fvl = FvlLabelLengths(labeled);
      fvl_avg += fvl.avg_bits;
      fvl_max = std::max(fvl_max, fvl.max_bits);

      DrlRunLabeler drl = DrlLabelRun(labeled.run, drl_index);
      int64_t total = 0, max_bits = 0, count = 0;
      for (int item = 0; item < labeled.run.num_items(); ++item) {
        if (!drl.HasLabel(item)) continue;
        int64_t bits = drl.LabelBits(item);
        total += bits;
        max_bits = std::max(max_bits, bits);
        ++count;
      }
      drl_avg += static_cast<double>(total) / count;
      drl_max = std::max(drl_max, static_cast<double>(max_bits));
    }
    fvl_avg /= config.runs_per_point();
    drl_avg /= config.runs_per_point();
    table.AddRow({std::to_string(size), TablePrinter::Num(fvl_avg, 1),
                  TablePrinter::Num(fvl_max, 0), TablePrinter::Num(drl_avg, 1),
                  TablePrinter::Num(drl_max, 0)});
  }
  table.Print("Figure 17: data label length (bits) vs run size, BioAID");
  std::printf(
      "expected shape: logarithmic growth (≈ +const per size doubling), "
      "DRL above FVL by a small constant\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
