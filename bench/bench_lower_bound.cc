// Theorems 3/5/6 illustrated empirically: for grammars outside the strictly
// linear-recursive class, dynamic labels must grow linearly with the run.
//
// FVL rejects the Figure-10 grammar (linear- but not strictly
// linear-recursive). The only general-purpose dynamic scheme that remains is
// the basic-parse-tree path labeling — label every item with its derivation
// path — whose labels grow linearly in the run size because the basic parse
// tree's depth is unbounded. This bench contrasts that linear growth with
// FVL's logarithmic labels on a strictly linear workload of the same size.

#include <cstdio>

#include "bench_util.h"
#include "fvl/workload/paper_example.h"

namespace fvl::bench {
namespace {

// Naive dynamic labeling for arbitrary safe grammars (the Thm.-1 "if"
// direction): the label of an item is its creating instance's path in the
// *basic* parse tree, one (production, position) pair per ancestor.
struct BasicPathLabeler {
  explicit BasicPathLabeler(const Grammar* grammar) : grammar_(grammar) {}

  void OnStart(const Run& run) {
    depth_.assign(1, 0);
    label_bits_.assign(run.num_items(), 8);  // port id only
  }
  void OnApply(const Run& run, const DerivationStep& step) {
    depth_.resize(run.num_instances(), 0);
    label_bits_.resize(run.num_items(), 0);
    const Production& p = grammar_->production(step.production);
    int parent_depth = depth_[step.instance];
    for (int pos = 0; pos < p.rhs.num_members(); ++pos) {
      depth_[step.first_child + pos] = parent_depth + 1;
    }
    // One fixed-width (production, position) pair per path component.
    int per_edge = 8;
    for (int e = 0; e < step.num_items; ++e) {
      label_bits_[step.first_item + e] =
          static_cast<int64_t>(parent_depth + 1) * per_edge + 8;
    }
  }

  const Grammar* grammar_;
  std::vector<int> depth_;
  std::vector<int64_t> label_bits_;
};

void Main(const BenchConfig& config) {
  // Non-strict grammar (Fig. 10): basic-path labels.
  Specification fig10 = MakeFig10Example();
  Result<FvlScheme> fig10_scheme = FvlScheme::Create(&fig10);
  bool fvl_rejects = !fig10_scheme.has_value();

  // Strictly linear workload for the FVL comparison column.
  Workload bioaid = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&bioaid.spec).value();

  TablePrinter table(
      {"run_size", "Fig10_basic_avg_bits", "Fig10_basic_max_bits",
       "BioAID_FVL_avg_bits", "BioAID_FVL_max_bits"});
  for (int size : config.run_sizes()) {
    BasicPathLabeler basic(&fig10.grammar);
    RunGeneratorOptions options;
    options.target_items = size;
    options.seed = size;
    Run run = GenerateRandomRun(
        fig10.grammar, options,
        [&](const Run& current, const DerivationStep* step) {
          if (step == nullptr) {
            basic.OnStart(current);
          } else {
            basic.OnApply(current, *step);
          }
        });
    int64_t total = 0, max_bits = 0;
    for (int64_t bits : basic.label_bits_) {
      total += bits;
      max_bits = std::max(max_bits, bits);
    }
    double basic_avg = static_cast<double>(total) / run.num_items();

    options.seed = size + 1;
    FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
    LabelLengthStats fvl = FvlLabelLengths(labeled);

    table.AddRow({std::to_string(size), TablePrinter::Num(basic_avg, 1),
                  TablePrinter::Num(static_cast<double>(max_bits), 0),
                  TablePrinter::Num(fvl.avg_bits, 1),
                  TablePrinter::Num(fvl.max_bits, 0)});
  }
  table.Print(
      "Thms. 3/6: linear-size labels outside the strictly linear class vs "
      "FVL's logarithmic labels inside it");
  std::printf(
      "FVL rejects the Fig-10 grammar: %s (\"%s\")\n"
      "expected shape: Fig-10 basic labels grow linearly with run size; "
      "FVL labels grow logarithmically\n",
      fvl_rejects ? "yes" : "NO (bug!)",
      fig10_scheme.status().ToString().c_str());
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
