// Figure 18: data-label construction time (ms) versus run size for FVL and
// DRL on BioAID. Both are linear in the run size (Thm. 10 part 1); the paper
// reports FVL ~10% faster for large runs.
//
// Methodology note: runs are derived once (underived generation time is
// excluded); each scheme then labels the recorded derivation online.

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/run_labeler.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  View default_view = MakeDefaultView(workload.spec);
  auto compiled =
      *CompiledView::Compile(workload.spec.grammar, default_view);
  DrlViewIndex drl_index(&workload.spec.grammar, &compiled);

  TablePrinter table({"run_size", "FVL_ms", "DRL_ms"});
  for (int size : config.run_sizes()) {
    double fvl_ms = 0, drl_ms = 0;
    for (int sample = 0; sample < config.runs_per_point(); ++sample) {
      RunGeneratorOptions options;
      options.target_items = size;
      options.seed = 1000 * sample + size;
      Run run = GenerateRandomRun(workload.spec.grammar, options);

      fvl_ms += TimeMs([&] {
        RunLabeler labeler = LabelEntireRun(run, scheme.production_graph());
        (void)labeler;
      });
      drl_ms += TimeMs([&] {
        DrlRunLabeler labeler = DrlLabelRun(run, drl_index);
        (void)labeler;
      });
    }
    table.AddRow({std::to_string(size),
                  TablePrinter::Num(fvl_ms / config.runs_per_point(), 3),
                  TablePrinter::Num(drl_ms / config.runs_per_point(), 3)});
  }
  table.Print("Figure 18: data label construction time (ms) vs run size");
  std::printf("expected shape: both linear in run size\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
