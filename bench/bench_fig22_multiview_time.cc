// Figure 22: total data-label construction time versus the number of views,
// FVL vs DRL (8K BioAID runs, medium black-box views). FVL labels the run
// once; DRL labels the view-projection of the run once per view. Each DRL
// pass is cheaper than FVL's single pass (the projected run is smaller), so
// DRL wins for one view, and the lines cross at a small view count (~3 in
// the paper).

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/run_labeler.h"
#include "fvl/drl/drl_scheme.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = config.quick ? 2000 : 8000;
  run_options.seed = 22;
  Run run = GenerateRandomRun(workload.spec.grammar, run_options);

  std::vector<CompiledView> views;
  for (int v = 0; v < 10; ++v) {
    ViewGeneratorOptions options;
    options.num_expandable = 8;
    options.deps = PerceivedDeps::kBlackBox;
    options.seed = 100 + v;
    views.push_back(GenerateSafeView(workload, options));
  }
  std::vector<DrlViewIndex> indices;
  for (int v = 0; v < 10; ++v) {
    indices.emplace_back(&workload.spec.grammar, &views[v]);
  }

  const int repetitions = config.quick ? 3 : 10;
  double fvl_ms = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    fvl_ms += TimeMs([&] {
      RunLabeler labeler = LabelEntireRun(run, scheme.production_graph());
      (void)labeler;
    });
  }
  fvl_ms /= repetitions;

  TablePrinter table({"num_views", "FVL_ms", "DRL_ms"});
  double drl_cumulative = 0;
  int crossover = -1;
  for (int v = 1; v <= 10; ++v) {
    double drl_ms = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      drl_ms += TimeMs([&] {
        DrlRunLabeler labeler = DrlLabelRun(run, indices[v - 1]);
        (void)labeler;
      });
    }
    drl_cumulative += drl_ms / repetitions;
    if (crossover == -1 && drl_cumulative > fvl_ms) crossover = v;
    table.AddRow({std::to_string(v), TablePrinter::Num(fvl_ms, 3),
                  TablePrinter::Num(drl_cumulative, 3)});
  }
  table.Print(
      "Figure 22: total data label construction time (ms) vs number of "
      "views");
  std::printf(
      "expected shape: FVL flat, DRL linear; crossover at a small view count "
      "(measured: %d)\n",
      crossover);
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
