// Figure 20: query time versus run size for the three FVL variants.
// Queries sample random pairs of data items in the same run and one of
// three views (small/medium/large), as in §6.3. Expected shape: flat in run
// size (constant query time); Query-Efficient ≈ Default ≪ Space-Efficient
// (the paper reports almost an order of magnitude).

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/decoder.h"

namespace fvl::bench {
namespace {

// Keeps timed loops observable without I/O.
volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // The three views of §6.3, labeled in all three variants.
  std::vector<CompiledView> views;
  for (const NamedViewSize& view_size : PaperViewSizes()) {
    ViewGeneratorOptions options;
    options.num_expandable = view_size.num_expandable;
    options.deps = PerceivedDeps::kGreyBox;
    options.seed = view_size.num_expandable;
    views.push_back(GenerateSafeView(workload, options));
  }

  TablePrinter table({"run_size", "SpaceEff_ns", "Default_ns", "QueryEff_ns"});
  for (int size : config.run_sizes()) {
    RunGeneratorOptions run_options;
    run_options.target_items = size;
    run_options.seed = size;
    FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);

    ViewLabelMode modes[3] = {ViewLabelMode::kSpaceEfficient,
                              ViewLabelMode::kDefault,
                              ViewLabelMode::kQueryEfficient};
    double ns[3] = {0, 0, 0};
    for (size_t v = 0; v < views.size(); ++v) {
      ViewLabel labels[3] = {scheme.LabelView(views[v], modes[0]),
                             scheme.LabelView(views[v], modes[1]),
                             scheme.LabelView(views[v], modes[2])};
      auto queries =
          GenerateVisibleQueries(labeled.run, labeled.labeler, labels[1],
                                 config.queries_per_point() / 3, 7 * size + v);
      for (int m = 0; m < 3; ++m) {
        // The space-efficient variant is orders of magnitude slower; cap its
        // sample count to keep the benchmark bounded.
        size_t count = m == 0 ? std::min<size_t>(queries.size(), 2000)
                              : queries.size();
        Decoder pi(&labels[m]);
        int hits = 0;
        Stopwatch watch;
        for (size_t q = 0; q < count; ++q) {
          hits += pi.Depends(labeled.labeler.Label(queries[q].first),
                             labeled.labeler.Label(queries[q].second))
                      ? 1
                      : 0;
        }
        ns[m] += watch.ElapsedNanos() / count;
        benchmark_sink = benchmark_sink + hits;
      }
    }
    table.AddRow({std::to_string(size),
                  TablePrinter::Num(ns[0] / views.size(), 1),
                  TablePrinter::Num(ns[1] / views.size(), 1),
                  TablePrinter::Num(ns[2] / views.size(), 1)});
  }
  table.Print("Figure 20: query time (ns/query) vs run size per FVL variant");
  std::printf(
      "expected shape: flat in run size; QueryEff <= Default << SpaceEff\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
