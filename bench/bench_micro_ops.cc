// Google-benchmark micro-benchmarks for the core operations on the query
// path: boolean matrix products, matrix-power oracles, label encode/decode,
// and the decoding predicate in its three variants plus DRL.

#include <benchmark/benchmark.h>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/drl/drl_scheme.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/view_generator.h"

namespace fvl {
namespace {

BoolMatrix RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  BoolMatrix m(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (rng.NextBool(0.4)) m.Set(r, c);
    }
  }
  return m;
}

void BM_BoolMatrixMultiply(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BoolMatrix a = RandomMatrix(n, 1);
  BoolMatrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
}
BENCHMARK(BM_BoolMatrixMultiply)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_MatrixPowerOracle(benchmark::State& state) {
  MatrixPowerOracle oracle(RandomMatrix(4, 3));
  int64_t q = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Power(q));
    q = (q * 7 + 1) % 100000;
  }
}
BENCHMARK(BM_MatrixPowerOracle);

void BM_BoolMatrixPowerLog(benchmark::State& state) {
  BoolMatrix x = RandomMatrix(4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoolMatrixPower(x, 100000));
  }
}
BENCHMARK(BM_BoolMatrixPowerLog);

struct QueryFixture {
  QueryFixture()
      : workload(MakeBioAid(2012)),
        scheme(FvlScheme::Create(&workload.spec).value()),
        labeled(scheme.GenerateLabeledRun([] {
          RunGeneratorOptions options;
          options.target_items = 8000;
          options.seed = 5;
          return options;
        }())),
        view(GenerateSafeView(workload, [] {
          ViewGeneratorOptions options;
          options.num_expandable = 8;
          options.deps = PerceivedDeps::kGreyBox;
          options.seed = 9;
          return options;
        }())),
        label_se(scheme.LabelView(view, ViewLabelMode::kSpaceEfficient)),
        label_def(scheme.LabelView(view, ViewLabelMode::kDefault)),
        label_qe(scheme.LabelView(view, ViewLabelMode::kQueryEfficient)),
        queries(GenerateVisibleQueries(labeled.run, labeled.labeler, label_qe,
                                       10000, 3)) {}

  static QueryFixture& Get() {
    static QueryFixture* fixture = new QueryFixture();
    return *fixture;
  }

  Workload workload;
  FvlScheme scheme;
  FvlScheme::LabeledRun labeled;
  CompiledView view;
  ViewLabel label_se, label_def, label_qe;
  std::vector<std::pair<int, int>> queries;
};

void RunQueryBench(benchmark::State& state, const ViewLabel& label) {
  QueryFixture& fixture = QueryFixture::Get();
  Decoder pi(&label);
  size_t q = 0;
  for (auto _ : state) {
    const auto& [d1, d2] = fixture.queries[q];
    benchmark::DoNotOptimize(pi.Depends(fixture.labeled.labeler.Label(d1),
                                        fixture.labeled.labeler.Label(d2)));
    q = (q + 1) % fixture.queries.size();
  }
}

void BM_DecoderQueryEfficient(benchmark::State& state) {
  RunQueryBench(state, QueryFixture::Get().label_qe);
}
BENCHMARK(BM_DecoderQueryEfficient);

void BM_DecoderDefault(benchmark::State& state) {
  RunQueryBench(state, QueryFixture::Get().label_def);
}
BENCHMARK(BM_DecoderDefault);

void BM_DecoderSpaceEfficient(benchmark::State& state) {
  RunQueryBench(state, QueryFixture::Get().label_se);
}
BENCHMARK(BM_DecoderSpaceEfficient);

void BM_LabelEncode(benchmark::State& state) {
  QueryFixture& fixture = QueryFixture::Get();
  const LabelCodec& codec = fixture.labeled.labeler.codec();
  size_t item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.Encode(fixture.labeled.labeler.Label(
            static_cast<int>(item % fixture.labeled.run.num_items()))));
    ++item;
  }
}
BENCHMARK(BM_LabelEncode);

void BM_LabelDecode(benchmark::State& state) {
  QueryFixture& fixture = QueryFixture::Get();
  const LabelCodec& codec = fixture.labeled.labeler.codec();
  BitWriter encoded = codec.Encode(fixture.labeled.labeler.Label(0));
  for (auto _ : state) {
    BitReader reader(encoded);
    benchmark::DoNotOptimize(codec.Decode(&reader));
  }
}
BENCHMARK(BM_LabelDecode);

void BM_DrlQuery(benchmark::State& state) {
  Workload workload = MakeBioAid(2012);
  ViewGeneratorOptions options;
  options.num_expandable = 8;
  options.deps = PerceivedDeps::kBlackBox;
  options.seed = 9;
  CompiledView view = GenerateSafeView(workload, options);
  DrlViewIndex index(&workload.spec.grammar, &view);
  RunGeneratorOptions run_options;
  run_options.target_items = 8000;
  Run run = GenerateRandomRun(workload.spec.grammar, run_options);
  DrlRunLabeler labeler = DrlLabelRun(run, index);
  std::vector<int> visible;
  for (int item = 0; item < run.num_items(); ++item) {
    if (labeler.HasLabel(item)) visible.push_back(item);
  }
  Rng rng(4);
  size_t q = 0;
  std::vector<std::pair<int, int>> queries;
  for (int i = 0; i < 10000; ++i) {
    queries.emplace_back(visible[rng.NextBounded(visible.size())],
                         visible[rng.NextBounded(visible.size())]);
  }
  for (auto _ : state) {
    const auto& [d1, d2] = queries[q];
    benchmark::DoNotOptimize(
        DrlDepends(index, labeler.Label(d1), labeler.Label(d2)));
    q = (q + 1) % queries.size();
  }
}
BENCHMARK(BM_DrlQuery);

}  // namespace
}  // namespace fvl

BENCHMARK_MAIN();
