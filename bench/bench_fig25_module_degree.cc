// Figure 25: query time versus module degree (synthetic workflows, degree
// 2..10). The degree determines the cardinality of the reachability
// matrices multiplied during decoding, so query time grows with it.

#include <cstdio>

#include "bench_util.h"
#include "fvl/core/decoder.h"

namespace fvl::bench {
namespace {

// Keeps timed loops observable without I/O.
volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  TablePrinter table({"module_degree", "QueryEff_ns"});
  for (int degree = 2; degree <= 10; degree += 2) {
    SyntheticOptions options;
    options.module_degree = degree;
    options.workflow_size = 8;
    options.nesting_depth = 4;
    options.recursion_length = 2;
    options.seed = 25;
    Workload workload = MakeSynthetic(options);
    FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

    RunGeneratorOptions run_options;
    run_options.target_items = config.quick ? 2000 : 8000;
    run_options.seed = degree;
    FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);

    ViewGeneratorOptions view_options;
    view_options.deps = PerceivedDeps::kGreyBox;
    view_options.num_expandable = -1;
    view_options.seed = degree;
    CompiledView view = GenerateSafeView(workload, view_options);
    ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
    Decoder pi(&label);

    auto queries =
        GenerateVisibleQueries(labeled.run, labeled.labeler, label,
                               config.queries_per_point(), 31 * degree);
    int sink = 0;
    Stopwatch watch;
    for (const auto& [d1, d2] : queries) {
      sink += pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2))
                  ? 1
                  : 0;
    }
    double ns = watch.ElapsedNanos() / queries.size();
    benchmark_sink = benchmark_sink + sink;
    table.AddRow({std::to_string(degree), TablePrinter::Num(ns, 1)});
  }
  table.Print("Figure 25: query time (ns) vs module degree (Query-Efficient)");
  std::printf("expected shape: growing in the degree\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
