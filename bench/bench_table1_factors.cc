// Table 1: impact of the four synthetic-workflow factors (workflow size,
// module degree, nesting depth, recursion length) on the five performance
// metrics (data label length/time, view label length/time, query time).
// Each factor is swept with the others fixed; impact is classified by the
// max/min ratio across the sweep (>= 2.0 high, >= 1.25 low, else none),
// mirroring the paper's qualitative table:
//
//                  dlabel-len dlabel-time vlabel-len vlabel-time query-time
//  workflow size   no         no          HIGH       HIGH        no
//  module degree   no         no          low        low         HIGH
//  nesting depth   HIGH       low         low        low         low
//  recursion len   low        low         low        low         low

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fvl/core/decoder.h"
#include "fvl/core/run_labeler.h"

namespace fvl::bench {
namespace {

// Keeps timed loops observable without I/O.
volatile long benchmark_sink = 0;

struct Metrics {
  double data_label_bits = 0;  // max per item (the Thm.-10 per-label bound)
  double data_label_ms = 0;
  double view_label_bits = 0;
  double view_label_ms = 0;
  double query_ns = 0;
  // The paper's complexity accounting holds the specification size constant
  // (§4.5); sweeping a factor necessarily changes |G|, so view-label impact
  // is classified per unit of grammar size.
  double grammar_ports = 1;

  double view_label_bits_normalized() const {
    return view_label_bits / grammar_ports;
  }
  double view_label_ms_normalized() const {
    return view_label_ms / grammar_ports;
  }
};

Metrics Measure(const SyntheticOptions& options, const BenchConfig& config) {
  Workload workload = MakeSynthetic(options);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = config.quick ? 2000 : 8000;
  run_options.seed = 1;
  Run run = GenerateRandomRun(workload.spec.grammar, run_options);

  Metrics metrics;
  metrics.data_label_ms = TimeMs([&] {
    RunLabeler labeler = LabelEntireRun(run, scheme.production_graph());
    (void)labeler;
  });
  RunLabeler labeler = LabelEntireRun(run, scheme.production_graph());
  int64_t max_bits = 0;
  for (int item = 0; item < run.num_items(); ++item) {
    max_bits = std::max(max_bits, labeler.LabelBits(item));
  }
  metrics.data_label_bits = static_cast<double>(max_bits);
  metrics.grammar_ports = static_cast<double>(workload.spec.grammar.Size());

  ViewGeneratorOptions view_options;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 3;
  CompiledView view = GenerateSafeView(workload, view_options);
  metrics.view_label_ms = TimeMs([&] {
    ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
    (void)label;
  });
  ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
  metrics.view_label_bits = static_cast<double>(label.SizeBits());

  Decoder pi(&label);
  auto queries = GenerateVisibleQueries(run, labeler, label,
                                        config.quick ? 10000 : 50000, 5);
  int sink = 0;
  Stopwatch watch;
  for (const auto& [d1, d2] : queries) {
    sink += pi.Depends(labeler.Label(d1), labeler.Label(d2)) ? 1 : 0;
  }
  metrics.query_ns = watch.ElapsedNanos() / queries.size();
  benchmark_sink = benchmark_sink + sink;
  return metrics;
}

std::string Impact(double max_over_min) {
  if (max_over_min >= 2.0) return "high";
  if (max_over_min >= 1.25) return "low";
  return "no";
}

void Main(const BenchConfig& config) {
  struct Factor {
    const char* name;
    std::vector<SyntheticOptions> sweep;
  };
  auto base = [] {
    SyntheticOptions options;
    options.workflow_size = 8;
    options.module_degree = 4;
    options.nesting_depth = 4;
    options.recursion_length = 2;
    options.seed = 7;
    return options;
  };
  std::vector<Factor> factors;
  {
    Factor f{"workflow size", {}};
    for (int w : {5, 10, 20, 40}) {
      SyntheticOptions o = base();
      o.workflow_size = w;
      f.sweep.push_back(o);
    }
    factors.push_back(f);
  }
  {
    Factor f{"module degree", {}};
    for (int d : {2, 4, 8}) {
      SyntheticOptions o = base();
      o.module_degree = d;
      f.sweep.push_back(o);
    }
    factors.push_back(f);
  }
  {
    Factor f{"nesting depth", {}};
    for (int h : {2, 4, 8}) {
      SyntheticOptions o = base();
      o.nesting_depth = h;
      f.sweep.push_back(o);
    }
    factors.push_back(f);
  }
  {
    Factor f{"recursion length", {}};
    for (int r : {1, 2, 4}) {
      SyntheticOptions o = base();
      o.recursion_length = r;
      f.sweep.push_back(o);
    }
    factors.push_back(f);
  }

  TablePrinter raw({"factor", "value", "dlabel_bits", "dlabel_ms",
                    "vlabel_KB", "vlabel_ms", "query_ns"});
  TablePrinter impacts({"factor", "dlabel_len", "dlabel_time", "vlabel_len",
                        "vlabel_time", "query_time"});
  for (const Factor& factor : factors) {
    std::vector<Metrics> results;
    for (const SyntheticOptions& options : factor.sweep) {
      Metrics m = Measure(options, config);
      results.push_back(m);
      int value = factor.name == std::string("workflow size")
                      ? options.workflow_size
                  : factor.name == std::string("module degree")
                      ? options.module_degree
                  : factor.name == std::string("nesting depth")
                      ? options.nesting_depth
                      : options.recursion_length;
      raw.AddRow({factor.name, std::to_string(value),
                  TablePrinter::Num(m.data_label_bits, 1),
                  TablePrinter::Num(m.data_label_ms, 3),
                  TablePrinter::Num(m.view_label_bits / 8192.0, 2),
                  TablePrinter::Num(m.view_label_ms, 3),
                  TablePrinter::Num(m.query_ns, 1)});
    }
    auto ratio_of = [&](auto getter) {
      double lo = getter(results[0]), hi = getter(results[0]);
      for (const Metrics& m : results) {
        lo = std::min(lo, getter(m));
        hi = std::max(hi, getter(m));
      }
      return lo > 0 ? hi / lo : 1.0;
    };
    impacts.AddRow(
        {factor.name,
         Impact(ratio_of([](const Metrics& m) { return m.data_label_bits; })),
         Impact(ratio_of([](const Metrics& m) { return m.data_label_ms; })),
         Impact(ratio_of(
             [](const Metrics& m) { return m.view_label_bits_normalized(); })),
         Impact(ratio_of(
             [](const Metrics& m) { return m.view_label_ms_normalized(); })),
         Impact(ratio_of([](const Metrics& m) { return m.query_ns; }))});
  }
  raw.Print("Table 1 (raw sweeps)");
  impacts.Print("Table 1: factor impact classification");
  std::printf(
      "expected: workflow size -> view label (high); module degree -> query "
      "time (high); nesting depth -> data label length (high); recursion "
      "length -> low/no impact\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
