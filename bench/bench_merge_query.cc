// Multi-run merging: the cost of ProvenanceIndex::Merge and the throughput
// of cross-run batch queries through one merged artifact versus per-run
// loops over the individual snapshots.
//
// Three query paths over the same workload (R runs of the BioAID spec, a
// fixed pool of same-run queries spread across all runs):
//   * one_at_a_time — the legacy pattern: decode both labels from the
//     owning run's snapshot for every query, then apply the predicate;
//   * per_run_batched — one DependsMany call per run (decode-once within a
//     run, but R calls, R scratch setups, R codec checks);
//   * merged — a single QueryAcrossRuns over the merged index: one scratch,
//     one contiguous relocated arena, decode-once across the whole batch.
// Merge cost is reported per row; expect it in the milliseconds (one bulk
// bit copy per run into the shared LabelStore arena — no per-label work)
// and amortized after one batch. Merged throughput should beat
// one_at_a_time by the usual 2-4x decode-amortization factor and stay close
// to the per-run batch path (it pays a RunOf partition and a larger decode
// table for the single-call, single-artifact interface). bytes_per_label is the
// merged store's bytes per item (shared arena + grouped offsets); the
// merged_t2/t4 columns shard the decode loop across the service's
// fork-join query workers (set_query_threads) — identical answers,
// parallel decode.
//
// The second table compares the two paths from *serialized* runs:
// materializing every blob and calling Merge versus MergeRunsStreamed,
// which deserializes and appends one run at a time. stream_merge_ms should
// track mat_merge_ms (same bulk appends, plus per-blob parse); the peak
// columns are the memory story — peak live LabelStore instances
// (internal::StoreCountProbe, a peak-RSS proxy): the materialized path
// grows with the run count, the streamed path stays a small constant.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "fvl/core/label_store.h"
#include "fvl/service/provenance_service.h"

namespace fvl::bench {
namespace {

volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "merge_query");
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // The §6.3 medium view, registered once; labeling and decoder are cached.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 8;
  CompiledView generated = GenerateSafeView(workload, view_options);
  ViewHandle view = service->RegisterView(generated.view()).value();
  const ViewLabel& label =
      *service->LabelOf(view, ViewLabelMode::kQueryEfficient).value();
  Decoder pi(&label);

  const int items_per_run = config.quick ? 1000 : 4000;
  const std::vector<int> run_counts =
      config.quick ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16};

  TablePrinter stream_table({"runs", "total_items", "mat_merge_ms",
                             "mat_peak_stores", "stream_merge_ms",
                             "stream_peak_stores"});
  TablePrinter table({"runs", "total_items", "merge_ms", "bytes_per_label",
                      "queries", "one_at_a_time_qps", "per_run_batched_qps",
                      "merged_qps", "merged_t2_qps", "merged_t4_qps",
                      "speedup_vs_loop"});
  for (int num_runs : run_counts) {
    std::vector<std::shared_ptr<ProvenanceSession>> sessions;
    std::vector<ProvenanceIndex> snapshots;
    for (int r = 0; r < num_runs; ++r) {
      RunGeneratorOptions run_options;
      run_options.target_items = items_per_run;
      run_options.seed = 100 * num_runs + r;
      sessions.push_back(service->GenerateLabeledRun(run_options));
      snapshots.push_back(sessions.back()->Snapshot());
    }

    MergedProvenanceIndex merged;
    double merge_ms = TimeMs([&] {
      merged = ProvenanceIndex::Merge(snapshots).value();
    });

    // Serialized-run merging: materialize-everything vs MergeRunsStreamed,
    // with the store-count probe as the peak-RSS proxy for each.
    std::vector<std::string> blobs;
    for (const ProvenanceIndex& snapshot : snapshots) {
      blobs.push_back(snapshot.Serialize());
    }
    int mat_peak = 0;
    double mat_merge_ms = TimeMs([&] {
      const int base = internal::StoreCountProbe::live();
      internal::StoreCountProbe::ResetPeak();
      std::vector<ProvenanceIndex> materialized;
      materialized.reserve(blobs.size());
      for (const std::string& blob : blobs) {
        materialized.push_back(ProvenanceIndex::Deserialize(blob).value());
      }
      MergedProvenanceIndex from_blobs =
          ProvenanceIndex::Merge(materialized).value();
      benchmark_sink = benchmark_sink + from_blobs.total_items();
      mat_peak = internal::StoreCountProbe::peak() - base;
    });
    int stream_peak = 0;
    MergedProvenanceIndex streamed;
    double stream_merge_ms = TimeMs([&] {
      const int base = internal::StoreCountProbe::live();
      internal::StoreCountProbe::ResetPeak();
      std::vector<std::string_view> views(blobs.begin(), blobs.end());
      streamed = service->MergeRunsStreamed(views).value();
      stream_peak = internal::StoreCountProbe::peak() - base;
    });
    FVL_CHECK(streamed.total_items() == merged.total_items());
    stream_table.AddRow({std::to_string(num_runs),
                         std::to_string(merged.total_items()),
                         TablePrinter::Num(mat_merge_ms, 2),
                         std::to_string(mat_peak),
                         TablePrinter::Num(stream_merge_ms, 2),
                         std::to_string(stream_peak)});

    // One fixed pool of same-run queries, spread evenly over the runs, in
    // all three addressings.
    const int queries_per_run = config.queries_per_point() / num_runs;
    std::vector<std::vector<std::pair<int, int>>> per_run;
    std::vector<std::pair<RunItem, RunItem>> across;
    for (int r = 0; r < num_runs; ++r) {
      per_run.push_back(GenerateVisibleQueries(
          sessions[r]->run(), sessions[r]->labeler(), label, queries_per_run,
          13 * num_runs + r));
      for (const auto& [d1, d2] : per_run.back()) {
        across.push_back({{r, d1}, {r, d2}});
      }
    }
    const size_t total_queries = across.size();

    int hits_single = 0;
    double single_ms = TimeMs([&] {
      for (int r = 0; r < num_runs; ++r) {
        for (const auto& [d1, d2] : per_run[r]) {
          hits_single += pi.Depends(snapshots[r].Label(d1),
                                    snapshots[r].Label(d2));
        }
      }
    });
    benchmark_sink = benchmark_sink + hits_single;

    int hits_batched = 0;
    double batched_ms = TimeMs([&] {
      for (int r = 0; r < num_runs; ++r) {
        std::vector<bool> answers =
            service->DependsMany(view, snapshots[r], per_run[r]).value();
        for (bool answer : answers) hits_batched += answer;
      }
    });
    FVL_CHECK(hits_batched == hits_single);

    double merged_ms[3] = {0, 0, 0};
    const int thread_points[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
      service->set_query_threads(thread_points[t]);
      std::vector<bool> merged_answers;
      merged_ms[t] = TimeMs([&] {
        merged_answers =
            service->QueryAcrossRuns(view, merged, across).value();
      });
      int hits_merged = 0;
      for (bool answer : merged_answers) hits_merged += answer;
      FVL_CHECK(hits_merged == hits_single);
    }
    service->set_query_threads(1);

    double bytes_per_label =
        static_cast<double>(merged.SizeBits()) / 8.0 / merged.total_items();
    auto qps = [&](double ms) { return total_queries / (ms / 1000.0); };
    table.AddRow({std::to_string(num_runs),
                  std::to_string(merged.total_items()),
                  TablePrinter::Num(merge_ms, 2),
                  TablePrinter::Num(bytes_per_label, 2),
                  std::to_string(total_queries),
                  TablePrinter::Num(qps(single_ms), 0),
                  TablePrinter::Num(qps(batched_ms), 0),
                  TablePrinter::Num(qps(merged_ms[0]), 0),
                  TablePrinter::Num(qps(merged_ms[1]), 0),
                  TablePrinter::Num(qps(merged_ms[2]), 0),
                  TablePrinter::Num(single_ms / merged_ms[0], 2)});
  }
  table.Print(
      "multi-run merge + cross-run query throughput: one QueryAcrossRuns "
      "over the merged index vs per-run loops over individual snapshots "
      "(BioAID, medium grey-box view, query-efficient labels)");
  stream_table.Print(
      "memory-bounded merging of serialized runs: deserialize-everything + "
      "Merge vs MergeRunsStreamed (one input store alive at a time); "
      "peak_stores = peak live LabelStore count, a peak-RSS proxy");

  report.Add("merge_query_throughput", table);
  report.Add("streamed_merge", stream_table);
  report.Write();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
