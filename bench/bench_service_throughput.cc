// Service-layer query throughput: batched DependsMany versus the
// one-at-a-time loop on the BioAID workload.
//
// The one-at-a-time baseline is the documented legacy pattern (index.h):
// every query decodes both of its labels from the provenance index before
// applying the decoding predicate. DependsMany decodes each distinct item
// once per batch, so with Q queries over N items the decode work drops from
// 2Q to at most N — per-query call overhead, not predicate cost, dominates
// once labels are compact (cf. PIMDAL). Expected shape: batched throughput
// beats one-at-a-time on every run size, with the gap growing as Q/N grows.

#include <cstdio>

#include "bench_util.h"
#include "fvl/service/provenance_service.h"

namespace fvl::bench {
namespace {

volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // The §6.3 medium view, registered once; labeling and decoder are cached.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 8;
  CompiledView generated = GenerateSafeView(workload, view_options);
  ViewHandle view = service->RegisterView(generated.view()).value();
  const ViewLabel& label =
      *service->LabelOf(view, ViewLabelMode::kQueryEfficient).value();

  TablePrinter table({"run_size", "queries", "one_at_a_time_qps",
                      "batched_qps", "speedup"});
  for (int size : config.run_sizes()) {
    RunGeneratorOptions run_options;
    run_options.target_items = size;
    run_options.seed = size;
    auto session = service->GenerateLabeledRun(run_options);
    ProvenanceIndex index = session->Snapshot();

    auto queries =
        GenerateVisibleQueries(session->run(), session->labeler(), label,
                               config.queries_per_point(), 7 * size + 1);

    // One at a time: decode both sides of every query from the index.
    Decoder pi(&label);
    int hits_single = 0;
    double single_ms = TimeMs([&] {
      for (const auto& [d1, d2] : queries) {
        hits_single += pi.Depends(index.Label(d1), index.Label(d2));
      }
    });
    benchmark_sink = benchmark_sink + hits_single;

    // Batched: one DependsMany call per run.
    std::vector<bool> answers;
    double batched_ms = TimeMs([&] {
      answers = service->DependsMany(view, index, queries).value();
    });
    int hits_batched = 0;
    for (bool answer : answers) hits_batched += answer;
    FVL_CHECK(hits_batched == hits_single);

    double single_qps = queries.size() / (single_ms / 1000.0);
    double batched_qps = queries.size() / (batched_ms / 1000.0);
    table.AddRow({std::to_string(size), std::to_string(queries.size()),
                  TablePrinter::Num(single_qps, 0),
                  TablePrinter::Num(batched_qps, 0),
                  TablePrinter::Num(single_ms / batched_ms, 2)});
  }
  table.Print(
      "service query throughput: batched DependsMany vs one-at-a-time "
      "decode+query loop (BioAID, medium grey-box view, query-efficient "
      "labels)");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
