// Service-layer query throughput: batched DependsMany versus the
// one-at-a-time loop on the BioAID workload.
//
// The one-at-a-time baseline is the documented legacy pattern (index.h):
// every query decodes both of its labels from the provenance index before
// applying the decoding predicate. DependsMany decodes each distinct item
// once per batch, so with Q queries over N items the decode work drops from
// 2Q to at most N — per-query call overhead, not predicate cost, dominates
// once labels are compact (cf. PIMDAL). Expected shape: batched throughput
// beats one-at-a-time on every run size, with the gap growing as Q/N grows.
//
// Also reported per row:
//   * bytes_per_label — LabelStore bytes per item in the frozen snapshot
//     (arena + offsets), the space side of the shared-arena story;
//   * locked_qps — service->Depends one at a time, which takes the view
//     registry's internal mutex on every call: its gap to one_at_a_time_qps
//     is the whole cost of the lock (uncontended) on the worst-case path;
//   * batched_qps at 1/2/4 query threads — DependsMany's decode loop
//     sharded across the pool (set_query_threads); answers are identical,
//     only the decode stage parallelizes;
//   * cached_qps / hit_rate — the same batch replayed with the snapshot's
//     serving cache enabled and warm (one priming pass): repeated pairs hit
//     the reachability memo and skip decode + predicate entirely. hit_rate
//     is the memo's hit fraction accumulated on this snapshot's cache.
//
// A second table measures the incremental-checkpointing path of long
// executions (§2.3): a run is replayed step by step and frozen at 10
// checkpoints, once via full Snapshot() copies (O(run) each, so the total
// grows quadratically with run size) and once via SnapshotDelta
// (FreezeDelta: O(delta) each, so the total stays linear).
// snapshot_delta_ms should be roughly flat per item while
// snapshot_total_ms grows with the checkpoint count × run size;
// reassemble_ms is the one-time FromDeltas cost of rebuilding the full
// index from the deltas (bit-identical to Snapshot(), checked live).

#include <cstdio>

#include "bench_util.h"
#include "fvl/service/provenance_service.h"

namespace fvl::bench {
namespace {

volatile long benchmark_sink = 0;

void Main(const BenchConfig& config) {
  // Opened up front: a bad --json path must fail before the run, not after.
  JsonReport report(config, "service_throughput");
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // The §6.3 medium view, registered once; labeling and decoder are cached.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.deps = PerceivedDeps::kGreyBox;
  view_options.seed = 8;
  CompiledView generated = GenerateSafeView(workload, view_options);
  ViewHandle view = service->RegisterView(generated.view()).value();
  const ViewLabel& label =
      *service->LabelOf(view, ViewLabelMode::kQueryEfficient).value();

  TablePrinter table({"run_size", "queries", "bytes_per_label",
                      "one_at_a_time_qps", "locked_qps", "batched_qps",
                      "batched_t2_qps", "batched_t4_qps", "cached_qps",
                      "hit_rate", "speedup"});
  for (int size : config.run_sizes()) {
    RunGeneratorOptions run_options;
    run_options.target_items = size;
    run_options.seed = size;
    auto session = service->GenerateLabeledRun(run_options);
    ProvenanceIndex index = session->Snapshot();

    auto queries =
        GenerateVisibleQueries(session->run(), session->labeler(), label,
                               config.queries_per_point(), 7 * size + 1);

    // One at a time: decode both sides of every query from the index.
    Decoder pi(&label);
    int hits_single = 0;
    double single_ms = TimeMs([&] {
      for (const auto& [d1, d2] : queries) {
        hits_single += pi.Depends(index.Label(d1), index.Label(d2));
      }
    });
    benchmark_sink = benchmark_sink + hits_single;

    // One at a time through the service: same work plus one registry-mutex
    // acquisition per call (the decoder-cache lookup).
    int hits_locked = 0;
    double locked_ms = TimeMs([&] {
      for (const auto& [d1, d2] : queries) {
        hits_locked += service
                           ->Depends(view, index.Label(d1), index.Label(d2))
                           .value();
      }
    });
    FVL_CHECK(hits_locked == hits_single);

    // Batched: one DependsMany call per run, at 1/2/4 decode threads.
    // Serving caches stay off here so these columns keep measuring the raw
    // batch-decode path, comparable across releases.
    service->set_serving_cache_enabled(false);
    double batched_ms[3] = {0, 0, 0};
    const int thread_points[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
      service->set_query_threads(thread_points[t]);
      std::vector<bool> answers;
      batched_ms[t] = TimeMs([&] {
        answers = service->DependsMany(view, index, queries).value();
      });
      int hits_batched = 0;
      for (bool answer : answers) hits_batched += answer;
      FVL_CHECK(hits_batched == hits_single);
    }

    // Cached: same batch replayed against the snapshot's serving cache,
    // warmed by one prior pass — the steady-state skewed-serving number.
    service->set_serving_cache_enabled(true);
    std::vector<bool> cached_answers =
        service->DependsMany(view, index, queries).value();
    double cached_ms = TimeMs([&] {
      cached_answers = service->DependsMany(view, index, queries).value();
    });
    int hits_cached = 0;
    for (bool answer : cached_answers) hits_cached += answer;
    FVL_CHECK(hits_cached == hits_single);
    ServingCacheStats cache_stats = index.serving_cache()->stats();
    double hit_rate = cache_stats.ReachHitRate();
    service->set_query_threads(1);

    double bytes_per_label =
        static_cast<double>(index.SizeBits()) / 8.0 / index.num_items();
    auto qps = [&](double ms) { return queries.size() / (ms / 1000.0); };
    table.AddRow({std::to_string(size), std::to_string(queries.size()),
                  TablePrinter::Num(bytes_per_label, 2),
                  TablePrinter::Num(qps(single_ms), 0),
                  TablePrinter::Num(qps(locked_ms), 0),
                  TablePrinter::Num(qps(batched_ms[0]), 0),
                  TablePrinter::Num(qps(batched_ms[1]), 0),
                  TablePrinter::Num(qps(batched_ms[2]), 0),
                  TablePrinter::Num(qps(cached_ms), 0),
                  TablePrinter::Num(hit_rate, 3),
                  TablePrinter::Num(single_ms / batched_ms[0], 2)});
  }
  table.Print(
      "service query throughput: batched DependsMany (1/2/4 decode threads) "
      "vs one-at-a-time decode+query loops, raw and through the locked "
      "registry (BioAID, medium grey-box view, query-efficient labels)");

  // Incremental checkpointing: replay each run step by step, freezing at
  // ~10 evenly spaced checkpoints through both snapshot paths.
  TablePrinter checkpoint_table({"run_size", "checkpoints",
                                 "snapshot_total_ms", "snapshot_delta_ms",
                                 "delta_speedup", "reassemble_ms"});
  for (int size : config.run_sizes()) {
    RunGeneratorOptions run_options;
    run_options.target_items = size;
    run_options.seed = size;
    ProvenanceService::LabeledRun labeled =
        service->DeriveLabeledRun(run_options);

    RunLabeler labeler = service->MakeRunLabeler();
    labeler.OnStart(labeled.run);
    std::vector<ProvenanceIndex> deltas;
    double full_ms = 0, delta_ms = 0;
    int checkpoints = 0;
    auto freeze = [&] {
      full_ms += TimeMs([&] {
        ProvenanceIndex snapshot(labeler.store());
        benchmark_sink = benchmark_sink + snapshot.num_items();
      });
      delta_ms += TimeMs([&] {
        deltas.push_back(ProvenanceIndex(labeler.FreezeDelta()));
      });
      ++checkpoints;
    };
    for (int s = 0; s < labeled.run.num_steps(); ++s) {
      labeler.OnApply(labeled.run, labeled.run.step(s));
      if (labeler.num_labels() >= (checkpoints + 1) * size / 10) freeze();
    }
    freeze();  // the tail past the last threshold

    double reassemble_ms = TimeMs([&] {
      ProvenanceIndex reassembled = ProvenanceIndex::FromDeltas(deltas).value();
      FVL_CHECK(reassembled.num_items() == labeler.num_labels());
      benchmark_sink = benchmark_sink + reassembled.num_items();
    });

    checkpoint_table.AddRow({std::to_string(labeler.num_labels()),
                             std::to_string(checkpoints),
                             TablePrinter::Num(full_ms, 3),
                             TablePrinter::Num(delta_ms, 3),
                             TablePrinter::Num(full_ms / delta_ms, 2),
                             TablePrinter::Num(reassemble_ms, 3)});
  }
  checkpoint_table.Print(
      "incremental mid-run checkpointing: ~10 freezes per replayed run, "
      "full Snapshot() copies (O(run) each) vs SnapshotDelta (O(delta) "
      "each), plus the one-time FromDeltas reassembly (BioAID)");

  report.Add("query_throughput", table);
  report.Add("incremental_checkpointing", checkpoint_table);
  report.Write();
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
