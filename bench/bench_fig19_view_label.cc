// Figure 19: view-label length for small/medium/large views under the three
// FVL variants, plus the construction times the §6.3 text quotes. Expected
// shape: Space-Efficient ≪ Default < Query-Efficient, with the
// Query-Efficient overhead small in absolute terms.

#include <cstdio>

#include "bench_util.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  (void)config;
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  TablePrinter size_table(
      {"view", "expandable", "SpaceEff_KB", "Default_KB", "QueryEff_KB"});
  TablePrinter time_table(
      {"view", "SpaceEff_ms", "Default_ms", "QueryEff_ms"});

  for (const NamedViewSize& view_size : PaperViewSizes()) {
    ViewGeneratorOptions options;
    options.num_expandable = view_size.num_expandable;
    options.deps = PerceivedDeps::kGreyBox;
    options.seed = view_size.num_expandable;
    CompiledView view = GenerateSafeView(workload, options);

    double bits[3], ms[3];
    ViewLabelMode modes[3] = {ViewLabelMode::kSpaceEfficient,
                              ViewLabelMode::kDefault,
                              ViewLabelMode::kQueryEfficient};
    for (int m = 0; m < 3; ++m) {
      // Median-ish of several constructions for stable timing.
      double best = 1e100;
      int64_t size_bits = 0;
      for (int rep = 0; rep < 5; ++rep) {
        Stopwatch watch;
        ViewLabel label = scheme.LabelView(view, modes[m]);
        best = std::min(best, watch.ElapsedMillis());
        size_bits = label.SizeBits();
      }
      bits[m] = static_cast<double>(size_bits);
      ms[m] = best;
    }
    int expandable = 0;
    for (ModuleId mod = 0; mod < workload.spec.grammar.num_modules(); ++mod) {
      expandable += view.IsExpandable(mod) ? 1 : 0;
    }
    size_table.AddRow({view_size.name, std::to_string(expandable),
                       TablePrinter::Num(bits[0] / 8192.0, 3),
                       TablePrinter::Num(bits[1] / 8192.0, 3),
                       TablePrinter::Num(bits[2] / 8192.0, 3)});
    time_table.AddRow({view_size.name, TablePrinter::Num(ms[0], 4),
                       TablePrinter::Num(ms[1], 4),
                       TablePrinter::Num(ms[2], 4)});
  }
  size_table.Print("Figure 19: view label length (KB) per FVL variant");
  time_table.Print("§6.3 text: view label construction time (ms)");
  std::printf(
      "expected shape: SpaceEff ≪ Default < QueryEff; QueryEff extra over "
      "Default is small\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
