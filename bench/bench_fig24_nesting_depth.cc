// Figure 24: average data-label length versus nesting depth (synthetic
// workflows, depth 2..10, other parameters default). The nesting depth
// bounds the compressed-parse-tree depth, so label length grows linearly
// with it (the paper reports ~2 path components per extra level).

#include <cstdio>

#include "bench_util.h"

namespace fvl::bench {
namespace {

void Main(const BenchConfig& config) {
  TablePrinter table({"nesting_depth", "avg_bits", "max_bits"});
  for (int depth = 2; depth <= 10; depth += 2) {
    SyntheticOptions options;
    options.nesting_depth = depth;
    // Default workflow size 40 makes deep grammars huge; the paper's default
    // applies per parameter sweep — scale it down uniformly so the sweep
    // isolates depth (the label length depends on depth, not |W|; Table 1).
    options.workflow_size = 8;
    options.module_degree = 4;
    options.recursion_length = 2;
    options.seed = 24;
    Workload workload = MakeSynthetic(options);
    FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

    double avg = 0, max_bits = 0;
    int samples = config.quick ? 2 : 5;
    for (int sample = 0; sample < samples; ++sample) {
      RunGeneratorOptions run_options;
      run_options.target_items = config.quick ? 2000 : 8000;
      run_options.seed = 100 * depth + sample;
      FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
      LabelLengthStats stats = FvlLabelLengths(labeled);
      avg += stats.avg_bits;
      max_bits = std::max(max_bits, stats.max_bits);
    }
    table.AddRow({std::to_string(depth), TablePrinter::Num(avg / samples, 1),
                  TablePrinter::Num(max_bits, 0)});
  }
  table.Print("Figure 24: data label length (bits) vs nesting depth");
  std::printf("expected shape: linear growth in depth\n");
}

}  // namespace
}  // namespace fvl::bench

int main(int argc, char** argv) {
  fvl::bench::Main(fvl::bench::ParseArgs(argc, argv));
  return 0;
}
